// SharedArray::accumulate / accumulate_n and Env::reduce / reduce_dot —
// the phase-semantics-safe owner-side operations (docs/MODEL.md).
//
// The contract under test: for exactly commutative/associative ops
// (integer add/min/max/mul, a registered XOR), owner-side delivery through
// the compact kAccumList/kAccumBlock fragments commits bit-identical
// state to the plain fetch-free deferred-write path, under every
// distribution, with and without write combining, across a migration
// epoch — while never adding a fetch round-trip. Non-commutative user ops
// on conflicting elements are a reportable ppm::check violation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

constexpr uint64_t kN = 96;
constexpr uint64_t kVpsPerNode = 8;

PpmConfig cfg(int nodes, bool owner_side, bool combine = true) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = 2;
  c.runtime.owner_side_accumulate = owner_side;
  c.runtime.combine_writes = combine;
  return c;
}

/// One accumulate-heavy program over a single array of the given
/// distribution: seed, then three rounds mixing every accumulate flavor
/// (scalar add/min/max/mul/xor plus an accumulate_n run), with scattered
/// mostly-remote targets. Returns final contents (read on node 0) and the
/// run statistics.
std::vector<uint64_t> run_mixed(const PpmConfig& c, Distribution dist,
                                bool rebalance_mid = false,
                                RunResult* stats = nullptr) {
  std::vector<uint64_t> out;
  const RunResult res = run(c, [&](Env& env) {
    auto a = env.global_array<uint64_t>(kN, dist);
    env.register_accum_op<uint64_t>(
        a, 0, +[](uint64_t& x, const uint64_t& v) { x ^= v; });
    auto vps = env.ppm_do(kVpsPerNode);
    const uint64_t k_total =
        kVpsPerNode * static_cast<uint64_t>(env.node_count());
    vps.global_phase([&](Vp& vp) {
      for (uint64_t i = vp.global_rank(); i < kN; i += k_total) {
        a.set(i, i * 5 + 2);
      }
    });
    for (uint64_t round = 0; round < 3; ++round) {
      if (rebalance_mid && round == 1) a.rebalance();
      // Each op class owns a disjoint 16-element region (the bulk-add
      // runs own [80, 96)): only ops that commute with THEMSELVES may
      // collide on an element — the model's determinism contract.
      vps.global_phase([&](Vp& vp) {
        const uint64_t r = vp.global_rank();
        a.accumulate((r * 13 + round) % 16, ReduceOp::kAdd, r + 1);
        a.accumulate(16 + (r * 29 + 1) % 16, ReduceOp::kMin, r * 3 + round);
        a.accumulate(32 + (r * 17 + 5) % 16, ReduceOp::kMax, r * 40);
        a.accumulate(48 + (r * 11 + 7) % 16, ReduceOp::kMul, 1 + round % 2);
        a.accumulate(64 + (r * 7 + 3) % 16, ReduceOp::kUser0,
                     r * 0x9e3779b97f4a7c15ULL);
        // Bulk add runs: overlapping 3-element windows inside [80, 96).
        const uint64_t vals[3] = {round + 1, round + 2, round + 3};
        a.accumulate_n(80 + (r % 5) * 3, 3, ReduceOp::kAdd, vals);
      });
    }
    vps.global_phase([&](Vp& vp) {
      if (vp.global_rank() == 0) {
        for (uint64_t i = 0; i < kN; ++i) out.push_back(a.get(i));
      }
    });
  });
  if (stats != nullptr) *stats = res;
  return out;
}

TEST(CoreAccumulate, OwnerSideMatchesFetchPathEveryDistribution) {
  // The differential contract on a hand-sized program: owner-side
  // fragment delivery and the plain deferred-write path commit the same
  // bits under kBlock, kCyclic, and kAdaptive.
  for (const Distribution dist :
       {Distribution::kBlock, Distribution::kCyclic,
        Distribution::kAdaptive}) {
    const auto on = run_mixed(cfg(3, /*owner_side=*/true), dist);
    const auto off = run_mixed(cfg(3, /*owner_side=*/false), dist);
    ASSERT_EQ(on.size(), kN);
    EXPECT_EQ(on, off) << "distribution " << static_cast<int>(dist);
  }
}

TEST(CoreAccumulate, DistributionsAgreeWithEachOther) {
  // The program never reads mid-round, so its committed state is layout-
  // free: all three distributions must agree element-for-element.
  const auto block = run_mixed(cfg(3, true), Distribution::kBlock);
  const auto cyclic = run_mixed(cfg(3, true), Distribution::kCyclic);
  const auto adaptive = run_mixed(cfg(3, true), Distribution::kAdaptive);
  EXPECT_EQ(block, cyclic);
  EXPECT_EQ(block, adaptive);
}

TEST(CoreAccumulate, BitIdenticalAcrossMigrationEpoch) {
  // rebalance() mid-program forces a migration planning round at a commit
  // that also carries staged accumulate fragments: block handoff must not
  // lose, duplicate, or reorder them.
  RunResult stats;
  const auto on =
      run_mixed(cfg(3, true), Distribution::kAdaptive, /*rebalance_mid=*/true,
                &stats);
  const auto off =
      run_mixed(cfg(3, false), Distribution::kAdaptive, /*rebalance_mid=*/true);
  EXPECT_EQ(on, off);
  // And against the never-migrating layouts.
  EXPECT_EQ(on, run_mixed(cfg(3, true), Distribution::kBlock));
  EXPECT_GT(stats.accums_executed, 0u);
}

TEST(CoreAccumulate, CombineWritesInterplay) {
  // Sender-side folding of same-VP same-op accumulate runs must not
  // change committed bits, with the owner-side path on or off.
  const auto base = run_mixed(cfg(3, true, /*combine=*/true),
                              Distribution::kBlock);
  EXPECT_EQ(base, run_mixed(cfg(3, true, false), Distribution::kBlock));
  EXPECT_EQ(base, run_mixed(cfg(3, false, true), Distribution::kBlock));
  EXPECT_EQ(base, run_mixed(cfg(3, false, false), Distribution::kBlock));
}

TEST(CoreAccumulate, SameVpRunsAreCombined) {
  // A VP repeatedly accumulating the same element with one op is a
  // foldable run: the combiner must shrink shipped entries while leaving
  // the committed sum exact.
  auto program = [](bool combine) {
    PpmConfig c = cfg(2, true, combine);
    uint64_t got = 0;
    RunResult r = run(c, [&](Env& env) {
      auto a = env.global_array<uint64_t>(16);
      auto vps = env.ppm_do(2);
      vps.global_phase([&](Vp& vp) {
        for (int k = 0; k < 8; ++k) {
          a.accumulate(12, ReduceOp::kAdd, vp.global_rank() + 1);
        }
      });
      vps.global_phase([&](Vp&) {
        if (env.node_id() == 0) got = a.get(12);
      });
    });
    EXPECT_EQ(got, 8u * (1 + 2 + 3 + 4));
    return r;
  };
  const RunResult combined = program(true);
  const RunResult plain = program(false);
  EXPECT_GT(combined.entries_combined, 0u);
  EXPECT_EQ(plain.entries_combined, 0u);
  EXPECT_LE(combined.network_bytes, plain.network_bytes);
}

TEST(CoreAccumulate, NoFetchRoundTripsAndFewerWireBytes) {
  // accumulate() is write-only at the caller: a program of pure remote
  // accumulates (no reads anywhere) must never enter the cold read path
  // or fetch a single block — the owner applies fragments in place — and
  // the compact fragments must beat the plain bundle encoding on wire
  // bytes (12 bytes per entry, counted in reduction_bytes_saved).
  auto program = [](bool owner_side) {
    return run(cfg(3, owner_side), [](Env& env) {
      auto a = env.global_array<uint64_t>(kN);
      auto vps = env.ppm_do(kVpsPerNode);
      for (uint64_t round = 0; round < 3; ++round) {
        vps.global_phase([&](Vp& vp) {
          const uint64_t r = vp.global_rank();
          a.accumulate((r * 13 + round) % 32, ReduceOp::kAdd, r + 1);
          a.accumulate(32 + (r * 17 + 5) % 32, ReduceOp::kMax, r * 40);
          const uint64_t vals[3] = {round + 1, round + 2, round + 3};
          a.accumulate_n(64 + (r % 10) * 3, 3, ReduceOp::kAdd, vals);
        });
      }
    });
  };
  const RunResult on_stats = program(true);
  const RunResult off_stats = program(false);
  EXPECT_EQ(on_stats.slow_path_reads, 0u);
  EXPECT_EQ(off_stats.slow_path_reads, 0u);
  EXPECT_EQ(on_stats.remote_blocks_fetched, 0u);
  EXPECT_GT(on_stats.accums_executed, 0u);
  EXPECT_EQ(off_stats.accums_executed, 0u);
  EXPECT_GT(on_stats.reduction_bytes_saved, 0u);
  EXPECT_LT(on_stats.network_bytes, off_stats.network_bytes);
}

TEST(CoreAccumulate, ReduceAllOpsCorrectAndNodeAgreeing) {
  // reduce() over a seeded array for every built-in op plus the
  // registered XOR: every node must see the same scalar, equal to the
  // straight-line fold.
  constexpr int kNodes = 3;
  std::vector<uint64_t> want(kN);
  for (uint64_t i = 0; i < kN; ++i) want[i] = (i * 31 + 7) % 101 + 1;
  uint64_t sum = 0, mn = UINT64_MAX, mx = 0, xr = 0;
  for (const uint64_t v : want) {
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    xr ^= v;
  }
  std::vector<std::vector<uint64_t>> per_node(kNodes);
  run(cfg(kNodes, true), [&](Env& env) {
    auto a = env.global_array<uint64_t>(kN);
    env.register_accum_op<uint64_t>(
        a, 0, +[](uint64_t& x, const uint64_t& v) { x ^= v; });
    auto vps = env.ppm_do(kVpsPerNode);
    const uint64_t k_total =
        kVpsPerNode * static_cast<uint64_t>(env.node_count());
    vps.global_phase([&](Vp& vp) {
      for (uint64_t i = vp.global_rank(); i < kN; i += k_total) {
        a.set(i, (i * 31 + 7) % 101 + 1);
      }
    });
    auto h_sum = env.reduce(a, ReduceOp::kAdd);
    auto h_min = env.reduce(a, ReduceOp::kMin);
    auto h_max = env.reduce(a, ReduceOp::kMax);
    auto h_xor = env.reduce(a, ReduceOp::kUser0);
    vps.global_phase([&](Vp&) {});
    auto& mine = per_node[static_cast<size_t>(env.node_id())];
    mine = {h_sum.value(), h_min.value(), h_max.value(), h_xor.value()};
  });
  const std::vector<uint64_t> want_scalars = {sum, mn, mx, xr};
  for (int n = 0; n < kNodes; ++n) {
    EXPECT_EQ(per_node[static_cast<size_t>(n)], want_scalars)
        << "node " << n;
  }
}

TEST(CoreAccumulate, ReduceDotMatchesLocalFold) {
  constexpr int kNodes = 4;
  double want = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    want += (static_cast<double>(i) + 0.5) * (2.0 - static_cast<double>(i % 3));
  }
  double got = 0;
  RunResult stats = run(cfg(kNodes, true), [&](Env& env) {
    auto a = env.global_array<double>(kN);
    auto b = env.global_array<double>(kN);
    auto vps = env.ppm_do(kVpsPerNode);
    const uint64_t k_total =
        kVpsPerNode * static_cast<uint64_t>(env.node_count());
    vps.global_phase([&](Vp& vp) {
      for (uint64_t i = vp.global_rank(); i < kN; i += k_total) {
        a.set(i, static_cast<double>(i) + 0.5);
        b.set(i, 2.0 - static_cast<double>(i % 3));
      }
    });
    auto h = env.reduce_dot(a, b);
    vps.global_phase([&](Vp&) {});
    if (env.node_id() == 0) got = h.value();
  });
  EXPECT_EQ(got, want);  // bit-exact: same ascending fold order
  // The partials rode the commit barrier: the root-gather bytes a
  // standalone allreduce would have cost are recorded as saved.
  EXPECT_GT(stats.reduction_bytes_saved, 0u);
}

TEST(CoreAccumulate, ReduceDotMismatchedLayoutsRejected) {
  // The dot partial pairs the two arrays' owner-packed spans
  // positionally: a block/cyclic mismatch would silently multiply
  // unrelated elements, so registration must reject it loudly.
  EXPECT_THROW(run(cfg(2, true),
                   [](Env& env) {
                     auto a = env.global_array<double>(kN);
                     auto b = env.global_array<double>(
                         kN, Distribution::kCyclic);
                     (void)env.reduce_dot(a, b);
                   }),
               Error);
}

TEST(CoreAccumulate, NonCommutativeUserOpConflictFlagged) {
  // x = 2x + v does not commute with itself. Registering it as
  // non-commutative and firing two VPs at one element must produce a
  // kNonCommutativeAccum finding at the owner.
  PpmConfig c = cfg(2, true);
  c.runtime.validate_phases = true;
  const RunResult r = run(c, [](Env& env) {
    auto a = env.global_array<uint64_t>(16);
    env.register_accum_op<uint64_t>(
        a, 0, +[](uint64_t& x, const uint64_t& v) { x = 2 * x + v; },
        /*commutative=*/false);
    auto vps = env.ppm_do(2);
    vps.global_phase([&](Vp& vp) {
      a.accumulate(12, ReduceOp::kUser0, vp.global_rank() + 1);
    });
  });
  EXPECT_FALSE(r.check_report.clean());
  EXPECT_GE(r.check_report.non_commutative_accums, 1u);
  ASSERT_FALSE(r.check_report.violations.empty());
  const check::Violation& v = r.check_report.violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kNonCommutativeAccum);
  EXPECT_EQ(v.array_id, 0u);
  EXPECT_EQ(v.element, 12u);
}

TEST(CoreAccumulate, NonCommutativeSingleWriterIsClean) {
  // One entry per element is deterministic no matter the op: the checker
  // must not cry wolf, and both delivery paths agree on the result.
  auto program = [](bool owner_side) {
    PpmConfig c = cfg(2, owner_side);
    c.runtime.validate_phases = true;
    uint64_t got = 0;
    const RunResult r = run(c, [&](Env& env) {
      auto a = env.global_array<uint64_t>(16);
      env.register_accum_op<uint64_t>(
          a, 0, +[](uint64_t& x, const uint64_t& v) { x = 2 * x + v; },
          /*commutative=*/false);
      auto vps = env.ppm_do(2);
      vps.global_phase([&](Vp& vp) {
        a.set(vp.global_rank() + 8, 3);
      });
      vps.global_phase([&](Vp& vp) {
        a.accumulate(vp.global_rank() + 8, ReduceOp::kUser0,
                     vp.global_rank());
      });
      vps.global_phase([&](Vp&) {
        if (env.node_id() == 0) got = a.get(8);
      });
    });
    EXPECT_TRUE(r.check_report.clean()) << r.check_report.to_string();
    return got;
  };
  const uint64_t on = program(true);
  EXPECT_EQ(on, 6u);  // 2*3 + rank 0
  EXPECT_EQ(on, program(false));
}

TEST(CoreAccumulate, CommutativeConflictsStayClean) {
  // Many VPs accumulating one element with a single commutative op is the
  // model's histogram idiom — never a violation, either delivery path.
  for (const bool owner_side : {true, false}) {
    PpmConfig c = cfg(2, owner_side);
    c.runtime.validate_phases = true;
    uint64_t got = 0;
    const RunResult r = run(c, [&](Env& env) {
      auto a = env.global_array<uint64_t>(16);
      auto vps = env.ppm_do(4);
      vps.global_phase([&](Vp& vp) {
        a.accumulate(12, ReduceOp::kAdd, vp.global_rank() + 1);
      });
      vps.global_phase([&](Vp&) {
        if (env.node_id() == 0) got = a.get(12);
      });
    });
    EXPECT_TRUE(r.check_report.clean()) << r.check_report.to_string();
    EXPECT_EQ(got, 36u);  // sum of 1..8
  }
}

TEST(CoreAccumulate, OutsidePhaseAccumulateIsImmediateLocal) {
  // Outside phases accumulate() degrades to the plain immediate write
  // path (local-only, like set outside phases).
  PpmConfig c = cfg(1, true);
  uint64_t got = 0;
  run(c, [&](Env& env) {
    auto a = env.global_array<uint64_t>(8);
    a.set(3, 10);
    a.accumulate(3, ReduceOp::kAdd, 5);
    got = a.get(3);
  });
  EXPECT_EQ(got, 15u);
}

}  // namespace
}  // namespace ppm
