// Env-level node collectives (the paper's runtime utility functions) and
// system variables.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

PpmConfig cfg(int nodes, int cores = 1) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = cores;
  return c;
}

class EnvCollectives : public ::testing::TestWithParam<int> {};

TEST_P(EnvCollectives, SystemVariables) {
  const int nodes = GetParam();
  std::vector<int> ids;
  run(cfg(nodes, 3), [&](Env& env) {
    EXPECT_EQ(env.node_count(), nodes);
    EXPECT_EQ(env.cores_per_node(), 3);
    ids.push_back(env.node_id());
  });
  std::sort(ids.begin(), ids.end());
  for (int n = 0; n < nodes; ++n) EXPECT_EQ(ids[static_cast<size_t>(n)], n);
}

TEST_P(EnvCollectives, AllreduceSum) {
  const int nodes = GetParam();
  std::vector<double> results;
  run(cfg(nodes), [&](Env& env) {
    const double v = static_cast<double>(env.node_id() + 1);
    results.push_back(
        env.allreduce(v, [](double a, double b) { return a + b; }));
  });
  const double expect = nodes * (nodes + 1) / 2.0;
  for (double r : results) EXPECT_DOUBLE_EQ(r, expect);
}

TEST_P(EnvCollectives, AllgatherIndexedByNode) {
  const int nodes = GetParam();
  std::vector<std::vector<int>> views;
  run(cfg(nodes), [&](Env& env) {
    views.push_back(env.allgather(env.node_id() * 11));
  });
  for (const auto& view : views) {
    ASSERT_EQ(view.size(), static_cast<size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
      EXPECT_EQ(view[static_cast<size_t>(n)], n * 11);
    }
  }
}

TEST_P(EnvCollectives, BroadcastFromEachRoot) {
  const int nodes = GetParam();
  for (int root = 0; root < nodes; ++root) {
    std::vector<std::vector<int64_t>> got;
    run(cfg(nodes), [&](Env& env) {
      std::vector<int64_t> data;
      if (env.node_id() == root) data = {root * 5LL, -root, 7};
      env.broadcast(data, root);
      got.push_back(data);
    });
    for (const auto& d : got) {
      EXPECT_EQ(d, (std::vector<int64_t>{root * 5LL, -root, 7}));
    }
  }
}

TEST_P(EnvCollectives, InclusiveScanOverNodes) {
  const int nodes = GetParam();
  std::vector<std::pair<int, long>> got;
  run(cfg(nodes), [&](Env& env) {
    const long v = env.node_id() + 1;
    got.emplace_back(env.node_id(),
                     env.scan_inclusive(v, [](long a, long b) { return a + b; }));
  });
  for (const auto& [node, value] : got) {
    EXPECT_EQ(value, static_cast<long>(node + 1) * (node + 2) / 2);
  }
}

TEST_P(EnvCollectives, BarrierSynchronizesVirtualTime) {
  const int nodes = GetParam();
  std::vector<int64_t> after(static_cast<size_t>(nodes), -1);
  PpmConfig c = cfg(nodes);
  cluster::Machine machine(c.machine);
  run_on(machine, c.runtime, [&](Env& env) {
    machine.engine().advance_ns(1000 * (env.node_id() + 1));
    env.barrier();
    after[static_cast<size_t>(env.node_id())] = machine.engine().now_ns();
  });
  for (int64_t t : after) EXPECT_GE(t, 1000 * nodes);
}

TEST_P(EnvCollectives, CollectivesComposeWithPhases) {
  const int nodes = GetParam();
  std::vector<double> norms;
  run(cfg(nodes, 2), [&](Env& env) {
    auto x = env.global_array<double>(32);
    const uint64_t per = 32 / static_cast<uint64_t>(env.node_count());
    auto vps = env.ppm_do(per);
    vps.global_phase([&](Vp& vp) { x.set(vp.global_rank(), 2.0); });
    // Node-local partial sum over the owned chunk, then allreduce.
    double partial = 0;
    for (double v : x.local_span()) partial += v * v;
    norms.push_back(
        env.allreduce(partial, [](double a, double b) { return a + b; }));
  });
  const uint64_t covered = (32 / static_cast<uint64_t>(nodes)) *
                           static_cast<uint64_t>(nodes);
  for (double n2 : norms) EXPECT_DOUBLE_EQ(n2, 4.0 * covered);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, EnvCollectives,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

}  // namespace
}  // namespace ppm
