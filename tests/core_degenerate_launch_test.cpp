// Degenerate launch shapes: PPM_do(0), fewer VPs than cores, single
// node/core — all must commit correct state across both schedules and all
// three distributions, with phase validation on.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

struct Shape {
  int nodes;
  int cores;
};

// Even split of k_total VPs over the nodes, low nodes first.
uint64_t k_on_node(uint64_t k_total, int node, int nodes) {
  const uint64_t p = static_cast<uint64_t>(nodes);
  const uint64_t u = static_cast<uint64_t>(node);
  return k_total / p + (u < k_total % p ? 1 : 0);
}

TEST(DegenerateLaunch, AllSchedulesDistributionsAndShapes) {
  constexpr uint64_t kN = 7;
  const SchedulePolicy schedules[] = {SchedulePolicy::kStatic, SchedulePolicy::kDynamic};
  const Distribution dists[] = {Distribution::kBlock, Distribution::kCyclic,
                                Distribution::kAdaptive};
  const Shape shapes[] = {{1, 1}, {1, 3}, {2, 1}, {3, 2}};
  const uint64_t ks[] = {0, 1, 2};

  for (const SchedulePolicy sched : schedules) {
    for (const Distribution dist : dists) {
      for (const Shape shape : shapes) {
        for (const uint64_t k : ks) {
          SCOPED_TRACE(testing::Message()
                       << "sched="
                       << (sched == SchedulePolicy::kStatic ? "sta" : "dyn")
                       << " dist=" << static_cast<int>(dist)
                       << " nodes=" << shape.nodes << " cores=" << shape.cores
                       << " k=" << k);
          PpmConfig cfg;
          cfg.machine.nodes = shape.nodes;
          cfg.machine.cores_per_node = shape.cores;
          cfg.runtime.schedule = sched;
          cfg.runtime.validate_phases = true;
          cfg.runtime.validate_fail_fast = true;

          std::vector<uint64_t> got;
          run(cfg, [&](Env& env) {
            auto a = env.global_array<uint64_t>(kN, dist);
            auto vps =
                env.ppm_do(k_on_node(k, env.node_id(), env.node_count()));
            vps.global_phase([&](Vp& vp) {
              a.set(vp.global_rank(), vp.global_rank() * 2 + 1);
            });
            vps.global_phase(
                [&](Vp& vp) { a.add((vp.global_rank() + 3) % kN, 10); });
            vps.global_phase([&](Vp&) {});  // empty phase must be harmless
            // Read back with a fresh single-node group so k=0 programs can
            // still observe final state from inside a phase.
            got.assign(kN, 0);
            auto readers = env.ppm_do(env.node_id() == 0 ? kN : 0);
            readers.global_phase(
                [&](Vp& vp) { got[vp.global_rank()] = a.get(vp.global_rank()); });
          });

          std::vector<uint64_t> want(kN, 0);
          for (uint64_t r = 0; r < k; ++r) want[r] = r * 2 + 1;
          for (uint64_t r = 0; r < k; ++r) want[(r + 3) % kN] += 10;
          EXPECT_EQ(got, want);
        }
      }
    }
  }
}

TEST(DegenerateLaunch, ZeroVpsCommitsNothing) {
  for (const SchedulePolicy sched : {SchedulePolicy::kStatic, SchedulePolicy::kDynamic}) {
    PpmConfig cfg;
    cfg.machine.nodes = 2;
    cfg.machine.cores_per_node = 2;
    cfg.runtime.schedule = sched;
    cfg.runtime.validate_phases = true;
    uint64_t sum = 1;
    run(cfg, [&](Env& env) {
      auto a = env.global_array<uint64_t>(5);
      auto vps = env.ppm_do(0);
      vps.global_phase([&](Vp&) { a.add(0, 99); });  // never runs
      vps.global_phase([&](Vp&) { a.set(1, 7); });
      auto readers = env.ppm_do(env.node_id() == 0 ? 1 : 0);
      readers.global_phase([&](Vp&) {
        sum = 0;
        for (uint64_t i = 0; i < 5; ++i) sum += a.get(i);
      });
    });
    EXPECT_EQ(sum, 0u);
  }
}

TEST(DegenerateLaunch, NodePhaseWithFewerVpsThanCores) {
  // One VP on a 4-core node, zero on the other: three cores idle on node
  // 0, node 1 runs empty phases; node-shared state must still be right.
  PpmConfig cfg;
  cfg.machine.nodes = 2;
  cfg.machine.cores_per_node = 4;
  std::array<uint64_t, 2> vals{~0ull, ~0ull};
  run(cfg, [&](Env& env) {
    auto na = env.node_array<uint64_t>(3);
    auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    vps.node_phase([&](Vp& vp) { na.set(0, vp.global_rank() + 100); });
    vps.node_phase([&](Vp&) { na.add(0, 1); });
    vals[static_cast<size_t>(env.node_id())] = na.get(0);
  });
  EXPECT_EQ(vals[0], 101u);
  EXPECT_EQ(vals[1], 0u);  // node 1 ran no VPs; its instance is untouched
}

}  // namespace
}  // namespace ppm
