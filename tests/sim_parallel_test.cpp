// Conservative-window parallel simulator (docs/SIM.md): bit-identical
// replay across host-thread counts, zero-latency self-messages, delivery
// exactly on a window edge, and the fault-warp re-window clamp (delays
// shrinking below the lookahead are clamped, never reordered).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/machine.hpp"
#include "core/ppm.hpp"
#include "util/byte_buffer.hpp"

namespace ppm {
namespace {

TEST(SimParallel, ZeroLatencySelfMessages) {
  cluster::MachineConfig mc;
  mc.nodes = 2;
  mc.cores_per_node = 2;
  mc.sim_threads = 2;
  mc.intranode = {.latency_ns = 0,
                  .bytes_per_ns = 6.0,
                  .send_overhead_ns = 0,
                  .recv_overhead_ns = 0};
  cluster::Machine machine(mc);
  ASSERT_TRUE(machine.windowed());
  int64_t send_t = -1, recv_t = -1;
  machine.run_per_core([&](const cluster::Place& p) {
    if (p.node == 0 && p.core == 0) {
      net::Message m;
      m.src_node = 0;
      m.src_port = 0;
      m.dst_node = 0;
      m.dst_port = 1;
      send_t = sim::now_ns();
      machine.fabric().send(std::move(m));
    } else if (p.node == 0 && p.core == 1) {
      machine.fabric().endpoint(0, 1).recv();
      recv_t = sim::now_ns();
    }
  });
  // A zero-cost same-node message is delivered at the same virtual
  // instant it was sent: intra-node traffic never crosses an engine
  // boundary, so it is exempt from the lookahead floor.
  EXPECT_EQ(send_t, 0);
  EXPECT_EQ(recv_t, 0);
}

TEST(SimParallel, DeliveryExactlyOnTheWindowEdge) {
  cluster::MachineConfig mc;
  mc.nodes = 2;
  mc.cores_per_node = 1;
  mc.sim_threads = 2;
  mc.network = {.latency_ns = 5'000,
                .bytes_per_ns = 2.0,
                .send_overhead_ns = 0,
                .recv_overhead_ns = 0};
  cluster::Machine machine(mc);
  int64_t recv_t = -1;
  machine.run_per_core([&](const cluster::Place& p) {
    if (p.node == 0) {
      net::Message m;
      m.src_node = 0;
      m.src_port = 0;
      m.dst_node = 1;
      m.dst_port = 0;
      machine.fabric().send(std::move(m));
    } else {
      machine.fabric().endpoint(1, 0).recv();
      recv_t = sim::now_ns();
    }
  });
  // Sent at t=0 with zero overheads and an empty payload, the arrival is
  // window_start + lookahead — exactly the first horizon. An arrival ON
  // the edge belongs to the next window and must be delivered at its
  // modeled time, not re-windowed.
  EXPECT_EQ(recv_t, 5'000);
  EXPECT_EQ(machine.fabric().stats().rewindowed, 0u);
  EXPECT_GT(machine.window_stats().windows, 0u);
}

/// One deterministic multi-phase program: scatter-add writes to remote
/// elements, then shuffled remote reads, over a few epochs. Returns the
/// run's RunResult and every value read, in (node, core-deterministic VP
/// order). `sums` is indexed per node — each slot is written only by that
/// node's engine, so windowed capture needs no host synchronization.
RunResult run_program(int sim_threads, bool faults,
                      std::vector<std::vector<double>>* reads_out) {
  constexpr int kNodes = 4;
  constexpr uint64_t kN = 512;
  PpmConfig c;
  c.machine.nodes = kNodes;
  c.machine.cores_per_node = 2;
  c.machine.sim_threads = sim_threads;
  if (faults) {
    c.machine.faults.delay_jitter = true;
    c.machine.faults.seed = 7;
    c.machine.faults.delay_probability = 0.5;
    c.machine.faults.max_extra_delay_ns = 50'000;
  }
  c.runtime.read_block_bytes = 256;
  reads_out->assign(kNodes, {});
  return run(c, [&](Env& env) {
    auto a = env.global_array<double>(kN);
    auto b = env.global_array<double>(kN);
    std::vector<double>& reads =
        (*reads_out)[static_cast<size_t>(env.node_id())];
    for (int round = 0; round < 3; ++round) {
      auto vps = env.ppm_do(kN / kNodes);
      vps.global_phase([&](Vp& vp) {
        const uint64_t r = vp.global_rank();
        a.add((r * 97 + 13) % kN, static_cast<double>(r + round));
        b.set((r * 31 + 7) % kN, static_cast<double>(r * 2 + round));
      });
      vps.global_phase([&](Vp& vp) {
        const uint64_t r = vp.global_rank();
        double s = a.get((r * 53) % kN) + b.get((kN - 1 - r * 11 % kN));
        if (vp.node_rank() == 0) reads.push_back(s);
      });
    }
  });
}

void expect_equal_runs(const RunResult& x, const RunResult& y) {
  EXPECT_EQ(x.duration_ns, y.duration_ns);
  EXPECT_EQ(x.network_messages, y.network_messages);
  EXPECT_EQ(x.network_bytes, y.network_bytes);
  EXPECT_EQ(x.intranode_messages, y.intranode_messages);
  EXPECT_EQ(x.intranode_bytes, y.intranode_bytes);
  EXPECT_EQ(x.global_phases, y.global_phases);
  EXPECT_EQ(x.remote_blocks_fetched, y.remote_blocks_fetched);
  EXPECT_EQ(x.remote_reads_served_from_cache,
            y.remote_reads_served_from_cache);
  EXPECT_EQ(x.write_entries, y.write_entries);
  EXPECT_EQ(x.bundles_sent, y.bundles_sent);
  EXPECT_EQ(x.fetch_stall_ns, y.fetch_stall_ns);
  EXPECT_EQ(x.entries_combined, y.entries_combined);
  EXPECT_EQ(x.accums_executed, y.accums_executed);
  EXPECT_EQ(x.reduction_bytes_saved, y.reduction_bytes_saved);
}

TEST(SimParallel, BitIdenticalAcrossHostThreadCounts) {
  std::vector<std::vector<double>> reads1, reads2, reads4;
  const RunResult r1 = run_program(1, /*faults=*/false, &reads1);
  const RunResult r2 = run_program(2, /*faults=*/false, &reads2);
  const RunResult r4 = run_program(4, /*faults=*/false, &reads4);
  expect_equal_runs(r1, r2);
  expect_equal_runs(r1, r4);
  EXPECT_EQ(reads1, reads2);
  EXPECT_EQ(reads1, reads4);
}

TEST(SimParallel, FaultJitterIsDeterministicAcrossThreadCounts) {
  std::vector<std::vector<double>> reads1, reads2, reads4;
  const RunResult r1 = run_program(1, /*faults=*/true, &reads1);
  const RunResult r2 = run_program(2, /*faults=*/true, &reads2);
  const RunResult r4 = run_program(4, /*faults=*/true, &reads4);
  expect_equal_runs(r1, r2);
  expect_equal_runs(r1, r4);
  EXPECT_EQ(reads1, reads2);
  EXPECT_EQ(reads1, reads4);
}

/// Accumulate-heavy program: every VP fires add/min/max/xor owner-side
/// accumulates at scattered (mostly remote) elements each round, plus one
/// commit-barrier dot reduction per round. Returns the run's RunResult,
/// the final array contents as read on node 0, and each round's reduction
/// value (identical on every node; captured on node 0).
RunResult run_accum_program(int sim_threads, bool faults,
                            std::vector<uint64_t>* state_out,
                            std::vector<uint64_t>* dots_out) {
  constexpr int kNodes = 4;
  constexpr uint64_t kN = 128;
  constexpr uint64_t kVps = 32;
  PpmConfig c;
  c.machine.nodes = kNodes;
  c.machine.cores_per_node = 2;
  c.machine.sim_threads = sim_threads;
  if (faults) {
    c.machine.faults.delay_jitter = true;
    c.machine.faults.seed = 13;
    c.machine.faults.delay_probability = 0.5;
    c.machine.faults.max_extra_delay_ns = 50'000;
  }
  state_out->clear();
  dots_out->clear();
  return run(c, [&](Env& env) {
    auto a = env.global_array<uint64_t>(kN);
    auto b = env.global_array<uint64_t>(kN);
    env.register_accum_op<uint64_t>(
        a, 0, +[](uint64_t& x, const uint64_t& v) { x ^= v; });
    auto vps = env.ppm_do(kVps / kNodes);
    vps.global_phase([&](Vp& vp) {
      const uint64_t r = vp.global_rank();
      // Seed both arrays so min/mul have signal.
      for (uint64_t i = r; i < kN; i += kVps) {
        a.set(i, i * 3 + 1);
        b.set(i, i % 7 + 1);
      }
    });
    for (uint64_t round = 0; round < 3; ++round) {
      auto dot = env.reduce_dot(a, b);
      // Each op class owns a disjoint 32-element region of `a`: only ops
      // that commute with THEMSELVES may collide on an element (the
      // model's determinism contract, docs/MODEL.md).
      vps.global_phase([&](Vp& vp) {
        const uint64_t r = vp.global_rank();
        a.accumulate((r * 13 + 5 + round) % 32, ReduceOp::kAdd, r + round);
        a.accumulate(32 + (r * 29 + 1) % 32, ReduceOp::kMin, r * 2 + round);
        a.accumulate(64 + (r * 17 + 3) % 32, ReduceOp::kMax, r * 100);
        a.accumulate(96 + (r * 7 + round) % 32, ReduceOp::kUser0,
                     r * 0x9e3779b9ULL);
        b.accumulate((r * 11 + round) % kN, ReduceOp::kMul, 2 + round % 2);
      });
      if (env.node_id() == 0) dots_out->push_back(dot.value());
    }
    vps.global_phase([&](Vp& vp) {
      if (vp.global_rank() == 0) {
        for (uint64_t i = 0; i < kN; ++i) state_out->push_back(a.get(i));
        for (uint64_t i = 0; i < kN; ++i) state_out->push_back(b.get(i));
      }
    });
  });
}

/// Straight-line golden model of run_accum_program: phase writes applied
/// at commit (the accumulate ops commute exactly on uint64, sets hit
/// disjoint elements), reductions read phase-start state.
void golden_accum_program(std::vector<uint64_t>* state,
                          std::vector<uint64_t>* dots) {
  constexpr uint64_t kN = 128;
  constexpr uint64_t kVps = 32;
  std::vector<uint64_t> a(kN, 0), b(kN, 0);
  for (uint64_t r = 0; r < kVps; ++r) {
    for (uint64_t i = r; i < kN; i += kVps) {
      a[i] = i * 3 + 1;
      b[i] = i % 7 + 1;
    }
  }
  dots->clear();
  for (uint64_t round = 0; round < 3; ++round) {
    std::vector<uint64_t> na = a, nb = b;
    for (uint64_t r = 0; r < kVps; ++r) {
      na[(r * 13 + 5 + round) % 32] += r + round;
      na[32 + (r * 29 + 1) % 32] =
          std::min(na[32 + (r * 29 + 1) % 32], r * 2 + round);
      na[64 + (r * 17 + 3) % 32] =
          std::max(na[64 + (r * 17 + 3) % 32], r * 100);
      na[96 + (r * 7 + round) % 32] ^= r * 0x9e3779b9ULL;
      nb[(r * 11 + round) % kN] *= 2 + round % 2;
    }
    a = std::move(na);
    b = std::move(nb);
    // A reduction registered before a phase resolves at that phase's
    // commit, reading the just-committed (post-apply) state.
    uint64_t dot = 0;
    for (uint64_t i = 0; i < kN; ++i) dot += a[i] * b[i];
    dots->push_back(dot);
  }
  state->clear();
  state->insert(state->end(), a.begin(), a.end());
  state->insert(state->end(), b.begin(), b.end());
}

TEST(SimParallel, AccumulateBitIdenticalAcrossHostThreadCounts) {
  // Owner-side accumulate fragments and commit-barrier reductions must
  // replay bit-identically across host-thread counts — including the
  // accums_executed / reduction_bytes_saved counters — and match the
  // straight-line golden model exactly.
  std::vector<uint64_t> s1, s2, s4, d1, d2, d4, gs, gd;
  const RunResult r1 = run_accum_program(1, /*faults=*/false, &s1, &d1);
  const RunResult r2 = run_accum_program(2, /*faults=*/false, &s2, &d2);
  const RunResult r4 = run_accum_program(4, /*faults=*/false, &s4, &d4);
  expect_equal_runs(r1, r2);
  expect_equal_runs(r1, r4);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d4);
  golden_accum_program(&gs, &gd);
  EXPECT_EQ(s1, gs);
  EXPECT_EQ(d1, gd);
  // The owner-side path actually ran: remote accumulates were applied
  // from staged fragments and the wire win was recorded.
  EXPECT_GT(r1.accums_executed, 0u);
  EXPECT_GT(r1.reduction_bytes_saved, 0u);
}

TEST(SimParallel, AccumulateFaultJitterDeterministicAcrossThreadCounts) {
  std::vector<uint64_t> s1, s2, s4, d1, d2, d4, gs, gd;
  const RunResult r1 = run_accum_program(1, /*faults=*/true, &s1, &d1);
  const RunResult r2 = run_accum_program(2, /*faults=*/true, &s2, &d2);
  const RunResult r4 = run_accum_program(4, /*faults=*/true, &s4, &d4);
  expect_equal_runs(r1, r2);
  expect_equal_runs(r1, r4);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d4);
  // Fault jitter moves virtual time, never committed state.
  golden_accum_program(&gs, &gd);
  EXPECT_EQ(s1, gs);
  EXPECT_EQ(d1, gd);
}

/// Fault-injected arrival warps that shrink a message's wire time below
/// the lookahead are re-windowed (clamped up to the completed horizon),
/// never delivered into an engine's past and never reordered within a
/// (src, dst, port) pair.
void run_warp(int sim_threads, std::vector<int64_t>* recv_times,
              uint64_t* rewindowed) {
  constexpr int kMessages = 50;
  cluster::MachineConfig mc;
  mc.nodes = 2;
  mc.cores_per_node = 1;
  mc.sim_threads = sim_threads;
  mc.network = {.latency_ns = 5'000,
                .bytes_per_ns = 2.0,
                .send_overhead_ns = 100,
                .recv_overhead_ns = 100};
  mc.faults.delay_jitter = true;
  mc.faults.seed = 11;
  mc.faults.delay_probability = 0.5;
  mc.faults.max_extra_delay_ns = 2'000;
  mc.faults.test_arrival_warp_ns = -6'000;  // below the 5 us lookahead
  cluster::Machine machine(mc);
  recv_times->clear();
  machine.run_per_core([&](const cluster::Place& p) {
    if (p.node == 0) {
      for (int i = 0; i < kMessages; ++i) {
        net::Message m;
        m.src_node = 0;
        m.src_port = 0;
        m.dst_node = 1;
        m.dst_port = 0;
        ByteWriter w;
        w.put<int64_t>(i);
        m.payload = std::move(w).take();
        machine.fabric().send(std::move(m));
        sim::advance_ns(1'500);
      }
    } else {
      for (int i = 0; i < kMessages; ++i) {
        net::Message m = machine.fabric().endpoint(1, 0).recv();
        ByteReader r(m.payload);
        // Never reordered: pairwise FIFO survives warp + clamp.
        ASSERT_EQ(r.get<int64_t>(), i);
        recv_times->push_back(sim::now_ns());
      }
    }
  });
  *rewindowed = machine.fabric().stats().rewindowed;
}

TEST(SimParallel, NegativeWarpIsRewindowedNeverReordered) {
  std::vector<int64_t> t1, t2;
  uint64_t rw1 = 0, rw2 = 0;
  run_warp(1, &t1, &rw1);
  run_warp(2, &t2, &rw2);
  EXPECT_GT(rw1, 0u);
  // The clamp itself is deterministic: both thread counts re-window the
  // same arrivals and deliver at the same virtual times.
  EXPECT_EQ(rw1, rw2);
  EXPECT_EQ(t1, t2);
  // Clamped arrivals are never early: every delivery sits at or after the
  // modeled minimum (send overhead + wire latency).
  for (const int64_t t : t1) EXPECT_GE(t, 5'000);
}

TEST(SimParallel, ClampFallsBackToClassicEngine) {
  // A shared backbone is a machine-global serialization point the
  // source-partitioned driver cannot model: sim_threads is clamped to the
  // classic engine rather than silently mis-simulating.
  cluster::MachineConfig mc;
  mc.nodes = 2;
  mc.sim_threads = 4;
  mc.backbone_bytes_per_ns = 4.0;
  cluster::Machine machine(mc);
  EXPECT_FALSE(machine.windowed());
  EXPECT_EQ(machine.sim_threads(), 0);
  machine.engine();  // classic accessor stays valid
}

}  // namespace
}  // namespace ppm
