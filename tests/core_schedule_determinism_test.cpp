// Scheduler determinism: the VP-to-core scheduling policy (kStatic's
// contiguous chunks vs kDynamic's shared-counter work stealing) changes
// which core runs which VP and in what interleaving — but phase semantics
// promise the COMMITTED result is policy-independent: reads see the
// phase-start snapshot and writes commit in ascending (global VP rank,
// per-VP sequence) order regardless of execution order.
#include <gtest/gtest.h>

#include <vector>

#include "core/ppm.hpp"
#include "util/rng.hpp"

namespace ppm {
namespace {

struct Snapshot {
  std::vector<int64_t> contents;   // committed array values at the end
  std::vector<double> stencil;     // second array, float path
  RunResult result;
};

/// Seeded irregular workload: per-VP trip counts and write targets vary
/// wildly (rng-driven), VPs conflict on accumulate bins, and a stencil
/// phase mixes reads and disjoint sets. Irregularity is the point: it
/// makes the dynamic schedule's chunk assignment genuinely diverge from
/// the static one.
Snapshot run_with(SchedulePolicy policy, uint64_t chunk_size) {
  PpmConfig cfg;
  cfg.machine.nodes = 3;
  cfg.machine.cores_per_node = 4;
  cfg.runtime.schedule = policy;
  cfg.runtime.chunk_size = chunk_size;
  // Run under the sanitizer too: the workload is conflict-clean by
  // construction, and this doubles as a "clean program" check.
  cfg.runtime.validate_phases = true;

  constexpr uint64_t kN = 192;
  constexpr uint64_t kBins = 16;
  constexpr uint64_t kVpsPerNode = 48;
  Snapshot snap;
  snap.result = run(cfg, [&](Env& env) {
    auto bins = env.global_array<int64_t>(kBins);
    auto field = env.global_array<double>(kN);
    auto vps = env.ppm_do(kVpsPerNode);

    vps.global_phase([&](Vp& vp) {
      field.set(vp.global_rank() % kN,
                static_cast<double>(vp.global_rank() % kN) * 0.5);
    });

    for (int round = 0; round < 3; ++round) {
      vps.global_phase([&](Vp& vp) {
        // Irregular per-VP work: 1..32 accumulate writes to rng targets.
        Rng rng(0x9d2c5680u ^ vp.global_rank() ^
                (static_cast<uint64_t>(round) << 32));
        const uint64_t trips = 1 + rng.next_below(32);
        for (uint64_t t = 0; t < trips; ++t) {
          bins.add(rng.next_below(kBins),
                   static_cast<int64_t>(vp.global_rank() + t));
        }
        // Stencil over the (possibly remote) field with a disjoint set.
        const uint64_t i = vp.global_rank() % kN;
        const double left = field.get((i + kN - 1) % kN);
        const double right = field.get((i + 1) % kN);
        if (vp.global_rank() < kN) {
          field.set(i, 0.25 * left + 0.25 * right + 0.5 * field.get(i));
        }
      });
    }

    if (env.node_id() == 0) {
      auto probe = env.ppm_do(1);
      probe.global_phase([&](Vp&) {
        for (uint64_t b = 0; b < kBins; ++b) {
          snap.contents.push_back(bins.get(b));
        }
        for (uint64_t i = 0; i < kN; ++i) snap.stencil.push_back(field.get(i));
      });
    } else {
      auto probe = env.ppm_do(0);
      probe.global_phase([](Vp&) {});
    }
  });
  return snap;
}

TEST(ScheduleDeterminism, StaticAndDynamicCommitIdenticalState) {
  const Snapshot st = run_with(SchedulePolicy::kStatic, 0);
  const Snapshot dy = run_with(SchedulePolicy::kDynamic, 0);
  ASSERT_EQ(st.contents.size(), dy.contents.size());
  EXPECT_EQ(st.contents, dy.contents);
  ASSERT_EQ(st.stencil.size(), dy.stencil.size());
  for (size_t i = 0; i < st.stencil.size(); ++i) {
    // Bit-identical, not approximately equal: commit order is sorted by
    // (vp_rank, seq), so even FP results cannot depend on the schedule.
    EXPECT_EQ(st.stencil[i], dy.stencil[i]) << "element " << i;
  }
}

TEST(ScheduleDeterminism, CountersMatchAcrossPolicies) {
  const Snapshot st = run_with(SchedulePolicy::kStatic, 0);
  const Snapshot dy = run_with(SchedulePolicy::kDynamic, 0);
  EXPECT_EQ(st.result.write_entries, dy.result.write_entries);
  EXPECT_EQ(st.result.global_phases, dy.result.global_phases);
  EXPECT_EQ(st.result.node_phases, dy.result.node_phases);
  // Both runs were under the sanitizer and must be clean.
  EXPECT_TRUE(st.result.check_report.clean());
  EXPECT_TRUE(dy.result.check_report.clean());
  EXPECT_EQ(st.result.check_report.writes_observed,
            dy.result.check_report.writes_observed);
}

TEST(ScheduleDeterminism, ChunkSizeDoesNotChangeCommittedState) {
  const Snapshot coarse = run_with(SchedulePolicy::kDynamic, 16);
  const Snapshot fine = run_with(SchedulePolicy::kDynamic, 1);
  EXPECT_EQ(coarse.contents, fine.contents);
  EXPECT_EQ(coarse.stencil, fine.stencil);
  EXPECT_EQ(coarse.result.write_entries, fine.result.write_entries);
}

}  // namespace
}  // namespace ppm
