// Correctness of the CG application family: the generator, the serial
// reference, and the PPM and MPI distributed solvers (which must match the
// serial solution).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/cg/cg_mpi.hpp"
#include "apps/cg/cg_ppm.hpp"
#include "apps/cg/cg_serial.hpp"
#include "apps/cg/csr.hpp"

namespace ppm::apps::cg {
namespace {

const ChimneyProblem kSmall{.nx = 6, .ny = 6, .nz = 10};

TEST(ChimneyMatrix, StructureIsSane) {
  const CsrMatrix a = build_chimney_matrix(kSmall);
  EXPECT_EQ(a.n, 360u);
  EXPECT_EQ(a.row_ptr.size(), a.n + 1);
  EXPECT_EQ(a.col_idx.size(), a.values.size());
  // Interior points have 27 entries, boundary fewer.
  uint64_t max_row = 0, min_row = 100;
  for (uint64_t i = 0; i < a.n; ++i) {
    const uint64_t len = a.row_ptr[i + 1] - a.row_ptr[i];
    max_row = std::max(max_row, len);
    min_row = std::min(min_row, len);
  }
  EXPECT_EQ(max_row, 27u);
  EXPECT_EQ(min_row, 8u);  // corner point: itself + 7 neighbors
}

TEST(ChimneyMatrix, IsSymmetric) {
  const CsrMatrix a = build_chimney_matrix({.nx = 4, .ny = 4, .nz = 6});
  // Build a dense map and compare transposed entries.
  std::map<std::pair<uint64_t, uint64_t>, double> entries;
  for (uint64_t i = 0; i < a.n; ++i) {
    for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      entries[{i, a.col_idx[k]}] = a.values[k];
    }
  }
  for (const auto& [pos, v] : entries) {
    const auto it = entries.find({pos.second, pos.first});
    ASSERT_NE(it, entries.end()) << "missing transpose of (" << pos.first
                                 << "," << pos.second << ")";
    EXPECT_DOUBLE_EQ(it->second, v);
  }
}

TEST(ChimneyMatrix, IsStrictlyDiagonallyDominant) {
  const CsrMatrix a = build_chimney_matrix(kSmall);
  for (uint64_t i = 0; i < a.n; ++i) {
    double diag = 0, off = 0;
    for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      if (a.col_idx[k] == i) {
        diag = a.values[k];
      } else {
        off += std::abs(a.values[k]);
      }
    }
    EXPECT_GT(diag, off) << "row " << i;
  }
}

TEST(ChimneyMatrix, RowRangeGeneratorMatchesFullBuild) {
  const CsrMatrix full = build_chimney_matrix(kSmall);
  const CsrMatrix part = build_chimney_matrix_rows(kSmall, 100, 260);
  for (uint64_t i = 0; i < 160; ++i) {
    const uint64_t fk = full.row_ptr[100 + i];
    const uint64_t pk = part.row_ptr[i];
    ASSERT_EQ(full.row_ptr[101 + i] - fk, part.row_ptr[i + 1] - pk);
    for (uint64_t d = 0; d < part.row_ptr[i + 1] - pk; ++d) {
      EXPECT_EQ(full.col_idx[fk + d], part.col_idx[pk + d]);
      EXPECT_DOUBLE_EQ(full.values[fk + d], part.values[pk + d]);
    }
  }
}

TEST(ChimneyMatrix, RowSliceMatchesRowRangeBuild) {
  const CsrMatrix full = build_chimney_matrix(kSmall);
  const CsrMatrix sliced = full.row_slice(50, 90);
  const CsrMatrix built = build_chimney_matrix_rows(kSmall, 50, 90);
  EXPECT_EQ(sliced.row_ptr, built.row_ptr);
  EXPECT_EQ(sliced.col_idx, built.col_idx);
  EXPECT_EQ(sliced.values, built.values);
}

TEST(SerialCg, ConvergesAndSolves) {
  const CsrMatrix a = build_chimney_matrix(kSmall);
  const auto b = build_chimney_rhs(kSmall);
  const CgResult res = cg_solve_serial(a, b, {.max_iterations = 500});
  EXPECT_TRUE(res.converged);
  // Verify the residual independently: ||b - A x|| small.
  std::vector<double> ax(a.n);
  a.spmv(res.x, ax);
  double err = 0, bn = 0;
  for (uint64_t i = 0; i < a.n; ++i) {
    err += (b[i] - ax[i]) * (b[i] - ax[i]);
    bn += b[i] * b[i];
  }
  EXPECT_LT(std::sqrt(err), 1e-7 * std::sqrt(bn));
}

TEST(SerialCg, ResidualsDecreaseOverall) {
  const CsrMatrix a = build_chimney_matrix(kSmall);
  const auto b = build_chimney_rhs(kSmall);
  const CgResult res = cg_solve_serial(a, b, {.max_iterations = 50});
  ASSERT_GE(res.residual_history.size(), 10u);
  EXPECT_LT(res.residual_history.back(), res.residual_history.front());
}

struct Shape {
  int nodes;
  int cores;
};

class DistributedCg : public ::testing::TestWithParam<Shape> {};

TEST_P(DistributedCg, PpmMatchesSerial) {
  const auto serial =
      cg_solve_serial(build_chimney_matrix(kSmall), build_chimney_rhs(kSmall),
                      {.max_iterations = 60});

  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  std::vector<double> residuals;
  std::vector<double> x_head;
  run(cfg, [&](Env& env) {
    auto out = cg_solve_ppm(env, kSmall, {.max_iterations = 60});
    if (env.node_id() == 0) {
      residuals = out.residual_history;
      for (uint64_t i = out.x.local_begin(); i < out.x.local_end(); ++i) {
        x_head.push_back(out.x.get(i));  // immediate local reads
      }
    }
  });
  ASSERT_EQ(residuals.size(), serial.residual_history.size());
  for (size_t i = 0; i < residuals.size(); ++i) {
    EXPECT_NEAR(residuals[i], serial.residual_history[i],
                1e-6 * (1 + serial.residual_history[i]))
        << "iteration " << i;
  }
  for (size_t i = 0; i < x_head.size(); ++i) {
    EXPECT_NEAR(x_head[i], serial.x[i], 1e-6) << "x[" << i << "]";
  }
}

TEST_P(DistributedCg, MpiMatchesSerial) {
  const auto serial =
      cg_solve_serial(build_chimney_matrix(kSmall), build_chimney_rhs(kSmall),
                      {.max_iterations = 60});

  cluster::Machine machine(
      {.nodes = GetParam().nodes, .cores_per_node = GetParam().cores});
  mp::World world(machine);
  std::vector<double> residuals;
  std::vector<double> x0;
  machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    auto out = cg_solve_mpi(comm, kSmall, {.max_iterations = 60});
    if (comm.rank() == 0) {
      residuals = out.residual_history;
      x0 = out.x_local;
    }
  });
  ASSERT_EQ(residuals.size(), serial.residual_history.size());
  for (size_t i = 0; i < residuals.size(); ++i) {
    EXPECT_NEAR(residuals[i], serial.residual_history[i],
                1e-6 * (1 + serial.residual_history[i]))
        << "iteration " << i;
  }
  for (size_t i = 0; i < x0.size(); ++i) {
    EXPECT_NEAR(x0[i], serial.x[i], 1e-6) << "x[" << i << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributedCg,
    ::testing::Values(Shape{1, 1}, Shape{1, 4}, Shape{2, 2}, Shape{3, 1},
                      Shape{4, 2}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores);
    });

}  // namespace
}  // namespace ppm::apps::cg
