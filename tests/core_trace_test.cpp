// ppm::trace end-to-end: the zero-cost-when-off contract, byte-identical
// JSON across identically-configured runs (timestamps are virtual and the
// engine is modeled-only here), commit bit-identity between traced and
// untraced runs and across schedule policies, ring-wrap drop accounting,
// phase labels flowing into profiles and exports, and the counter rollup.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/ppm.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "util/rng.hpp"

namespace ppm {
namespace {

constexpr uint64_t kN = 96;
constexpr uint64_t kVpsPerNode = 24;

struct TracedRun {
  std::vector<double> contents;  // committed global array, bit-comparable
  std::string json;              // Chrome export ("" when tracing off)
  RunResult result;
  uint64_t trace_events = 0;
  uint64_t trace_dropped = 0;
};

/// Irregular multi-node workload with remote reads (stencil wraps across
/// the block boundaries), labeled phases, and rng-skewed per-VP work.
TracedRun run_workload(bool trace, SchedulePolicy schedule,
                       uint32_t buffer_events = 1u << 16) {
  PpmConfig cfg;
  cfg.machine.nodes = 3;
  cfg.machine.cores_per_node = 4;
  cfg.runtime.schedule = schedule;
  cfg.runtime.profile_phases = true;
  cfg.runtime.trace = trace;
  cfg.runtime.trace_buffer_events = buffer_events;

  TracedRun out;
  cluster::Machine machine(cfg.machine);
  Runtime runtime(machine, cfg.runtime);
  machine.run_per_node([&](int node) {
    NodeRuntime& nr = runtime.node(node);
    nr.start();
    Env env(nr);
    auto field = env.global_array<double>(kN);
    auto vps = env.ppm_do(kVpsPerNode);

    env.phase_label("init");
    vps.global_phase([&](Vp& vp) {
      for (uint64_t i = vp.global_rank(); i < kN; i += 3 * kVpsPerNode) {
        field.set(i, static_cast<double>(i) * 0.25 + 1.0);
      }
    });
    for (int round = 0; round < 2; ++round) {
      env.phase_label("stencil");
      vps.global_phase([&](Vp& vp) {
        Rng rng(vp.global_rank() ^ (static_cast<uint64_t>(round) << 20));
        const uint64_t trips = 1 + rng.next_below(4);
        for (uint64_t t = 0; t < trips; ++t) {
          const uint64_t i = (vp.global_rank() + t * 17) % kN;
          const double left = field.get((i + kN - 1) % kN);
          const double right = field.get((i + 1) % kN);
          if (t == 0) field.set(i, 0.5 * (left + right));
        }
      });
    }

    if (node == 0) {
      out.contents.resize(kN);
      for (uint64_t i = 0; i < kN; ++i) out.contents[i] = field.get(i);
    }
    nr.finish();
  });
  out.result = runtime.collect();
  if (trace) {
    EXPECT_NE(runtime.trace(), nullptr) << "trace option must build a Trace";
    if (runtime.trace() != nullptr) {
      out.json = trace::to_chrome_json(*runtime.trace());
      out.trace_events = runtime.trace()->total_recorded();
      out.trace_dropped = runtime.trace()->total_dropped();
    }
  } else {
    EXPECT_EQ(runtime.trace(), nullptr);
  }
  return out;
}

TEST(TraceTest, OffByDefaultAndCommitIdenticalToTracedRun) {
  const TracedRun off = run_workload(false, SchedulePolicy::kStatic);
  const TracedRun on = run_workload(true, SchedulePolicy::kStatic);
  EXPECT_EQ(off.trace_events, 0u);
  EXPECT_TRUE(off.json.empty());
  EXPECT_GT(on.trace_events, 0u);
  // Observation must not perturb the observed: bit-identical commits.
  ASSERT_EQ(off.contents.size(), on.contents.size());
  for (size_t i = 0; i < off.contents.size(); ++i) {
    EXPECT_EQ(off.contents[i], on.contents[i]) << "element " << i;
  }
  // Counters are unaffected by tracing too.
  EXPECT_EQ(off.result.network_messages, on.result.network_messages);
  EXPECT_EQ(off.result.remote_blocks_fetched,
            on.result.remote_blocks_fetched);
}

TEST(TraceTest, SameConfigGivesByteIdenticalJson) {
  for (const auto policy :
       {SchedulePolicy::kStatic, SchedulePolicy::kDynamic}) {
    const TracedRun a = run_workload(true, policy);
    const TracedRun b = run_workload(true, policy);
    EXPECT_EQ(a.json, b.json)
        << "virtual-time trace must replay byte-identically";
    EXPECT_FALSE(a.json.empty());
  }
}

TEST(TraceTest, SchedulePoliciesCommitBitIdenticalUnderTracing) {
  const TracedRun sta = run_workload(true, SchedulePolicy::kStatic);
  const TracedRun dyn = run_workload(true, SchedulePolicy::kDynamic);
  ASSERT_EQ(sta.contents.size(), dyn.contents.size());
  for (size_t i = 0; i < sta.contents.size(); ++i) {
    EXPECT_EQ(sta.contents[i], dyn.contents[i]) << "element " << i;
  }
}

TEST(TraceTest, RingWrapDropsOldestAndCounts) {
  // 8 events/track is far below what the workload records: every track
  // wraps, keeps its most recent window, and accounts each overwrite.
  const TracedRun tiny = run_workload(true, SchedulePolicy::kStatic, 8);
  const TracedRun full = run_workload(true, SchedulePolicy::kStatic);
  EXPECT_GT(tiny.trace_dropped, 0u);
  EXPECT_EQ(tiny.trace_events, full.trace_events)
      << "recorded() counts drops, so capacity must not change it";
  EXPECT_EQ(full.trace_dropped, 0u);
  // The export flags the loss.
  EXPECT_NE(tiny.json.find("events_dropped"), std::string::npos);
  EXPECT_EQ(full.json.find("events_dropped"), std::string::npos);
}

TEST(TraceTest, RecorderRingUnit) {
  trace::Recorder rec(/*track=*/0, /*capacity_events=*/4);
  for (int i = 0; i < 6; ++i) {
    trace::Event e;
    e.t_ns = 100 * (i + 1);
    e.a = static_cast<uint64_t>(i);
    e.kind = trace::EventKind::kEngineStep;
    rec.record(e);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  EXPECT_EQ(rec.recorded(), 6u);
  const auto events = rec.ordered();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, i + 2) << "oldest two must have been dropped";
  }
}

TEST(TraceTest, SummaryAndLabelsFlow) {
  const TracedRun on = run_workload(true, SchedulePolicy::kStatic);
  const trace::Summary& s = on.result.trace_summary;
  EXPECT_EQ(s.events, on.trace_events);
  ASSERT_GE(s.phases.size(), 3u);  // init + 2 stencil rounds
  EXPECT_EQ(s.phases[0].label, "init");
  EXPECT_EQ(s.phases[1].label, "stencil");
  EXPECT_EQ(s.phases[0].nodes_seen, 3);
  EXPECT_GE(s.phases[0].critical_node, 0);
  EXPECT_LT(s.phases[0].critical_node, 3);
  EXPECT_GT(s.messages, 0u);
  EXPECT_GT(s.fetches, 0u);
  EXPECT_FALSE(s.to_string().empty());
  // Labels land in the Chrome export and the profile rows.
  EXPECT_NE(on.json.find("stencil"), std::string::npos);
}

TEST(TraceTest, CounterRollupAggregatesAcrossNodes) {
  const TracedRun on = run_workload(true, SchedulePolicy::kStatic);
  const auto& rollup = on.result.counter_rollup;
  ASSERT_FALSE(rollup.empty());
  bool saw_fetches = false;
  for (const auto& c : rollup) {
    EXPECT_LE(c.min, c.max) << c.name;
    EXPECT_GE(c.sum, c.max) << c.name;
    EXPECT_GE(c.min_node, 0);
    EXPECT_LT(c.max_node, 3);
    if (c.name == "blocks_fetched") {
      saw_fetches = true;
      EXPECT_EQ(c.sum, on.result.remote_blocks_fetched);
    }
  }
  EXPECT_TRUE(saw_fetches);
}

TEST(TraceTest, BinaryExportRoundTripHeader) {
  const TracedRun on = run_workload(true, SchedulePolicy::kStatic);
  // Re-run to get a live Trace for the binary exporter (the helper only
  // keeps the JSON); a smoke assertion on the envelope is enough here.
  PpmConfig cfg;
  cfg.machine.nodes = 2;
  cfg.runtime.trace = true;
  cluster::Machine machine(cfg.machine);
  Runtime runtime(machine, cfg.runtime);
  machine.run_per_node([&](int node) {
    NodeRuntime& nr = runtime.node(node);
    nr.start();
    Env env(nr);
    auto a = env.global_array<int64_t>(16);
    auto vps = env.ppm_do(8);
    vps.global_phase([&](Vp& vp) {
      a.set(vp.global_rank() % 16, static_cast<int64_t>(vp.global_rank()));
    });
    nr.finish();
  });
  (void)runtime.collect();
  ASSERT_NE(runtime.trace(), nullptr);
  const Bytes bin = trace::to_binary(*runtime.trace());
  ASSERT_GE(bin.size(), 16u);
  uint32_t magic = 0;
  std::memcpy(&magic, bin.data(), sizeof(magic));
  EXPECT_EQ(magic, trace::kBinaryMagic);
  EXPECT_FALSE(on.json.empty());
}

}  // namespace
}  // namespace ppm
