// Correctness of the Barnes–Hut family: octree invariants, force accuracy
// against the O(n^2) direct sum, and agreement of the PPM and MPI versions.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/nbody/nbody_mpi.hpp"
#include "apps/nbody/nbody_ppm.hpp"
#include "apps/nbody/nbody_serial.hpp"

namespace ppm::apps::nbody {
namespace {

constexpr uint64_t kN = 300;
constexpr uint64_t kSeed = 777;
const NbodyOptions kOpts{.theta = 0.4, .eps = 0.02, .dt = 0.002, .steps = 3};

double rel_err(const Vec3& got, const Vec3& want) {
  const double d = std::sqrt((got - want).norm2());
  const double w = std::sqrt(want.norm2());
  return d / (w + 1e-12);
}

TEST(BodySet, GeneratorsAreDeterministicAndBounded) {
  const BodySet a = make_plummer(kN, kSeed);
  const BodySet b = make_plummer(kN, kSeed);
  EXPECT_EQ(a.px, b.px);
  EXPECT_EQ(a.vz, b.vz);
  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_LT(a.position(i).norm2(), 4.0);
    EXPECT_GT(a.mass[i], 0.0);
  }
  const BodySet c = make_two_clusters(kN, kSeed);
  EXPECT_NE(c.px, a.px);
}

TEST(Octree, MassIsConserved) {
  const BodySet bodies = make_plummer(kN, kSeed);
  std::vector<int64_t> ids(kN);
  std::iota(ids.begin(), ids.end(), 0);
  Octree tree;
  tree.build(bodies.px, bodies.py, bodies.pz, bodies.mass, ids);
  ASSERT_FALSE(tree.empty());
  double total = 0;
  for (double m : bodies.mass) total += m;
  EXPECT_NEAR(tree.nodes()[0].mass, total, 1e-12);
}

TEST(Octree, EveryParticleLandsInExactlyOneLeaf) {
  const BodySet bodies = make_two_clusters(kN, kSeed);
  std::vector<int64_t> ids(kN);
  std::iota(ids.begin(), ids.end(), 0);
  Octree tree;
  tree.build(bodies.px, bodies.py, bodies.pz, bodies.mass, ids);
  std::vector<int> seen(kN, 0);
  for (const TreeNode& node : tree.nodes()) {
    if (!node.is_leaf()) continue;
    for (int i = 0; i < node.leaf_count; ++i) {
      ASSERT_GE(node.leaf[i].id, 0);
      ASSERT_LT(node.leaf[i].id, static_cast<int64_t>(kN));
      ++seen[static_cast<size_t>(node.leaf[i].id)];
    }
  }
  for (uint64_t i = 0; i < kN; ++i) EXPECT_EQ(seen[i], 1) << "particle " << i;
}

TEST(Octree, ChildrenLieInsideParents) {
  const BodySet bodies = make_plummer(kN, kSeed);
  std::vector<int64_t> ids(kN);
  std::iota(ids.begin(), ids.end(), 0);
  Octree tree;
  tree.build(bodies.px, bodies.py, bodies.pz, bodies.mass, ids);
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) continue;
    for (int32_t c : node.child) {
      if (c < 0) continue;
      EXPECT_LT(tree.nodes()[static_cast<size_t>(c)].half, node.half);
    }
  }
}

TEST(Octree, CoincidentParticlesDoNotExplode) {
  BodySet bodies;
  bodies.resize(20);
  for (uint64_t i = 0; i < 20; ++i) {
    bodies.px[i] = bodies.py[i] = bodies.pz[i] = 0.5;  // all identical
    bodies.mass[i] = 1.0;
  }
  std::vector<int64_t> ids(20);
  std::iota(ids.begin(), ids.end(), 0);
  Octree tree;
  tree.build(bodies.px, bodies.py, bodies.pz, bodies.mass, ids);
  EXPECT_LT(tree.nodes().size(), 10'000u);  // terminated
  EXPECT_NEAR(tree.nodes()[0].mass, 20.0, 1e-9);
}

TEST(SerialBh, ForcesMatchDirectSum) {
  const BodySet bodies = make_plummer(kN, kSeed);
  const auto direct = accelerations_direct(bodies, kOpts.eps);
  const auto bh = accelerations_serial_bh(bodies, kOpts);
  double rms = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    const double e = rel_err(bh[i], direct[i]);
    EXPECT_LT(e, 0.12) << "particle " << i;
    rms += e * e;
  }
  EXPECT_LT(std::sqrt(rms / kN), 0.03);  // aggregate accuracy at theta=0.4
}

TEST(SerialBh, SmallerThetaIsMoreAccurate) {
  const BodySet bodies = make_plummer(kN, kSeed);
  const auto direct = accelerations_direct(bodies, kOpts.eps);
  double rms_loose = 0, rms_tight = 0;
  NbodyOptions loose = kOpts, tight = kOpts;
  loose.theta = 0.9;
  tight.theta = 0.2;
  const auto a_loose = accelerations_serial_bh(bodies, loose);
  const auto a_tight = accelerations_serial_bh(bodies, tight);
  for (uint64_t i = 0; i < kN; ++i) {
    rms_loose += rel_err(a_loose[i], direct[i]) * rel_err(a_loose[i], direct[i]);
    rms_tight += rel_err(a_tight[i], direct[i]) * rel_err(a_tight[i], direct[i]);
  }
  EXPECT_LT(rms_tight, rms_loose);
}

TEST(SerialBh, EnergyApproximatelyConservedOverShortRun) {
  BodySet bodies = make_plummer(kN, kSeed);
  const double e0 = total_energy(bodies, kOpts.eps);
  NbodyOptions opts = kOpts;
  opts.steps = 10;
  simulate_serial_bh(bodies, opts);
  const double e1 = total_energy(bodies, kOpts.eps);
  EXPECT_LT(std::fabs(e1 - e0) / std::fabs(e0), 0.05);
}

struct Shape {
  int nodes;
  int cores;
};

class DistributedNbody : public ::testing::TestWithParam<Shape> {};

TEST_P(DistributedNbody, PpmForcesMatchDirectSum) {
  const BodySet bodies = make_two_clusters(kN, kSeed);
  const auto direct = accelerations_direct(bodies, kOpts.eps);
  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  std::vector<Vec3> all(kN);
  run(cfg, [&](Env& env) {
    auto st = setup_nbody_ppm(env, bodies);
    const auto acc = accelerations_ppm(env, st, kOpts);
    const uint64_t b = st.px.local_begin();
    for (uint64_t i = 0; i < acc.size(); ++i) all[b + i] = acc[i];
  });
  double rms = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    const double e = rel_err(all[i], direct[i]);
    EXPECT_LT(e, 0.15) << "particle " << i;
    rms += e * e;
  }
  EXPECT_LT(std::sqrt(rms / kN), 0.04);
}

TEST_P(DistributedNbody, MpiForcesMatchDirectSum) {
  const BodySet bodies = make_two_clusters(kN, kSeed);
  const auto direct = accelerations_direct(bodies, kOpts.eps);
  cluster::Machine machine(
      {.nodes = GetParam().nodes, .cores_per_node = GetParam().cores});
  mp::World world(machine);
  std::vector<Vec3> all(kN);
  machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    auto st = setup_nbody_mpi(comm, bodies);
    const auto acc = accelerations_mpi(comm, st, kOpts);
    for (uint64_t i = 0; i < acc.size(); ++i) all[st.begin + i] = acc[i];
  });
  double rms = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    const double e = rel_err(all[i], direct[i]);
    EXPECT_LT(e, 0.15) << "particle " << i;
    rms += e * e;
  }
  EXPECT_LT(std::sqrt(rms / kN), 0.04);
}

TEST_P(DistributedNbody, PpmAndMpiTrajectoriesStayClose) {
  // Both decompose identically (per node vs per rank differ), so compare
  // trajectories loosely after a short simulation: same physics, slightly
  // different tree partitions.
  const BodySet init = make_plummer(kN, kSeed);

  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  BodySet ppm_final;
  run(cfg, [&](Env& env) {
    auto st = setup_nbody_ppm(env, init);
    simulate_ppm(env, st, kOpts);
    if (env.node_id() == 0) ppm_final = snapshot_ppm(env, st);
    else (void)snapshot_ppm(env, st);
  });

  BodySet serial = init;
  simulate_serial_bh(serial, kOpts);

  ASSERT_EQ(ppm_final.size(), kN);
  double max_dev = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    const Vec3 d = ppm_final.position(i) - serial.position(i);
    max_dev = std::max(max_dev, std::sqrt(d.norm2()));
  }
  // Short horizon, theta-level approximation differences only.
  EXPECT_LT(max_dev, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributedNbody,
    ::testing::Values(Shape{1, 1}, Shape{2, 2}, Shape{3, 1}, Shape{4, 2}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores);
    });

}  // namespace
}  // namespace ppm::apps::nbody
