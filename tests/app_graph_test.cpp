// Graph application family: generators, serial references, and agreement
// of the PPM and MPI implementations across machine shapes and both data
// distributions.
#include <gtest/gtest.h>

#include <set>

#include "apps/graph/graph.hpp"
#include "apps/graph/graph_mpi.hpp"
#include "apps/graph/graph_ppm.hpp"

namespace ppm::apps::graph {
namespace {

TEST(GraphGen, UniformIsSymmetricAndDeduplicated) {
  const Graph g = make_uniform_graph(200, 6.0, 11);
  EXPECT_EQ(g.num_vertices, 200u);
  EXPECT_GT(g.num_edges(), 200u);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (uint64_t u = 0; u < g.num_vertices; ++u) {
    for (uint64_t k = g.row_ptr[u]; k < g.row_ptr[u + 1]; ++k) {
      const uint64_t v = g.adjacency[k];
      EXPECT_NE(u, v) << "self loop";
      EXPECT_TRUE(seen.insert({u, v}).second) << "duplicate edge";
    }
  }
  // Symmetry: (u,v) present iff (v,u) present.
  for (const auto& [u, v] : seen) {
    EXPECT_TRUE(seen.count({v, u})) << u << "," << v;
  }
}

TEST(GraphGen, RmatHasSkewedDegrees) {
  const Graph g = make_rmat_graph(512, 8.0, 5);
  uint64_t max_degree = 0;
  double mean = 0;
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    max_degree = std::max(max_degree, g.degree(v));
    mean += static_cast<double>(g.degree(v));
  }
  mean /= static_cast<double>(g.num_vertices);
  EXPECT_GT(static_cast<double>(max_degree), 4 * mean)
      << "power-law graph should have hubs";
}

TEST(GraphGen, DeterministicFromSeed) {
  const Graph a = make_rmat_graph(128, 4.0, 77);
  const Graph b = make_rmat_graph(128, 4.0, 77);
  EXPECT_EQ(a.adjacency, b.adjacency);
  const Graph c = make_rmat_graph(128, 4.0, 78);
  EXPECT_NE(a.adjacency, c.adjacency);
}

TEST(GraphGen, RowSliceKeepsGlobalIds) {
  const Graph g = make_uniform_graph(100, 5.0, 3);
  const Graph s = g.row_slice(40, 60);
  for (uint64_t lu = 0; lu < 20; ++lu) {
    EXPECT_EQ(s.row_ptr[lu + 1] - s.row_ptr[lu], g.degree(40 + lu));
  }
}

TEST(SerialGraph, BfsDistancesAreValid) {
  const Graph g = make_uniform_graph(300, 4.0, 21);
  const auto dist = bfs_serial(g, 0);
  EXPECT_EQ(dist[0], 0);
  // Triangle inequality along every edge.
  for (uint64_t u = 0; u < g.num_vertices; ++u) {
    if (dist[u] == kUnreached) continue;
    for (uint64_t k = g.row_ptr[u]; k < g.row_ptr[u + 1]; ++k) {
      const uint64_t v = g.adjacency[k];
      ASSERT_NE(dist[v], kUnreached);
      EXPECT_LE(std::abs(dist[u] - dist[v]), 1);
    }
  }
}

TEST(SerialGraph, ComponentsPartitionTheGraph) {
  const Graph g = make_uniform_graph(300, 1.5, 9);  // sparse: several comps
  const auto label = components_serial(g);
  // Same component <=> connected: every edge joins equal labels, and each
  // label is the minimum vertex id of its members.
  for (uint64_t u = 0; u < g.num_vertices; ++u) {
    for (uint64_t k = g.row_ptr[u]; k < g.row_ptr[u + 1]; ++k) {
      EXPECT_EQ(label[u], label[g.adjacency[k]]);
    }
    EXPECT_LE(label[u], static_cast<int64_t>(u));
    EXPECT_EQ(label[static_cast<uint64_t>(label[u])], label[u]);
  }
}

struct Shape {
  int nodes;
  int cores;
  Distribution dist;
};

class DistributedGraph : public ::testing::TestWithParam<Shape> {};

TEST_P(DistributedGraph, PpmBfsMatchesSerial) {
  const Graph g = make_rmat_graph(400, 6.0, 31);
  const auto expect = bfs_serial(g, 2);
  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  std::vector<std::vector<int64_t>> got;
  run(cfg, [&](Env& env) {
    got.push_back(bfs_ppm(env, g, 2, GetParam().dist));
  });
  for (const auto& d : got) EXPECT_EQ(d, expect);
}

TEST_P(DistributedGraph, PpmComponentsMatchSerial) {
  const Graph g = make_uniform_graph(350, 1.8, 13);
  const auto expect = components_serial(g);
  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  std::vector<std::vector<int64_t>> got;
  run(cfg, [&](Env& env) {
    got.push_back(components_ppm(env, g, GetParam().dist));
  });
  for (const auto& labels : got) EXPECT_EQ(labels, expect);
}

TEST_P(DistributedGraph, MpiBfsMatchesSerial) {
  const Graph g = make_rmat_graph(400, 6.0, 31);
  const auto expect = bfs_serial(g, 2);
  cluster::Machine machine(
      {.nodes = GetParam().nodes, .cores_per_node = GetParam().cores});
  mp::World world(machine);
  std::vector<std::vector<int64_t>> got;
  machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    got.push_back(bfs_mpi(comm, g, 2));
  });
  for (const auto& d : got) EXPECT_EQ(d, expect);
}

TEST_P(DistributedGraph, BfsFromEverySourceOnSmallGraph) {
  const Graph g = make_uniform_graph(40, 3.0, 17);
  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  for (uint64_t src = 0; src < g.num_vertices; src += 7) {
    const auto expect = bfs_serial(g, src);
    std::vector<int64_t> got;
    run(cfg, [&](Env& env) {
      auto d = bfs_ppm(env, g, src, GetParam().dist);
      if (env.node_id() == 0) got = d;
    });
    EXPECT_EQ(got, expect) << "source " << src;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributedGraph,
    ::testing::Values(Shape{1, 2, Distribution::kBlock},
                      Shape{2, 2, Distribution::kBlock},
                      Shape{4, 1, Distribution::kBlock},
                      Shape{3, 2, Distribution::kCyclic},
                      Shape{4, 2, Distribution::kCyclic}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores) +
             (info.param.dist == Distribution::kCyclic ? "_cyclic"
                                                       : "_block");
    });

}  // namespace
}  // namespace ppm::apps::graph
