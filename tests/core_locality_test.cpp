// The locality engine: owner-mapped (kAdaptive) distribution, access
// profiling, and deterministic block migration at global commits.
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

PpmConfig cfg(int nodes, int cores = 2) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = cores;
  // Small migration blocks so modest arrays span many blocks per node.
  c.runtime.read_block_bytes = 64;
  return c;
}

// ---------------------------------------------------------------------------
// Owner-map round trips
// ---------------------------------------------------------------------------

TEST(OwnerMap, RoundTripsAllDistributions) {
  // owner_of/local_of must name every element exactly once within its
  // owner's storage, for every distribution, including uneven sizes,
  // fewer elements than nodes, and a single element.
  for (const int nodes : {1, 2, 3, 4, 5}) {
    for (const uint64_t n : {uint64_t{1}, uint64_t{3}, uint64_t{5},
                             uint64_t{23}, uint64_t{64}, uint64_t{129}}) {
      for (const auto dist : {Distribution::kBlock, Distribution::kCyclic,
                              Distribution::kAdaptive}) {
        run(cfg(nodes, 1), [&](Env& env) {
          auto a = env.global_array<int64_t>(n, dist);
          const auto& rec = env.runtime().array(a.id());
          // (owner, local) pairs must be unique: two elements sharing a
          // storage cell would corrupt each other.
          std::set<std::pair<int, uint64_t>> cells;
          for (uint64_t i = 0; i < n; ++i) {
            const int o = rec.owner_of(i);
            ASSERT_GE(o, 0);
            ASSERT_LT(o, nodes);
            ASSERT_EQ(o, a.owner(i));
            const uint64_t l = rec.local_of(i);
            ASSERT_LT(l, rec.owner_len(o))
                << "element " << i << " dist " << static_cast<int>(dist);
            ASSERT_TRUE(cells.emplace(o, l).second)
                << "elements collide in owner " << o << " cell " << l;
          }
        });
      }
    }
  }
}

TEST(OwnerMap, AdaptiveImmediateAccessOutsidePhases) {
  // Outside phases, locally owned elements of an owner-mapped array are
  // immediately readable and writable, like any other distribution.
  run(cfg(3, 1), [&](Env& env) {
    const uint64_t n = 40;
    auto a = env.global_array<int64_t>(n, Distribution::kAdaptive);
    for (uint64_t i = 0; i < n; ++i) {
      if (a.owner(i) == env.node_id()) a.set(i, static_cast<int64_t>(7 * i));
    }
    env.barrier();
    auto vps = env.ppm_do(1);
    vps.global_phase([&](Vp&) {
      for (uint64_t i = 0; i < n; ++i) {
        EXPECT_EQ(a.get(i), static_cast<int64_t>(7 * i)) << "element " << i;
      }
    });
  });
}

// ---------------------------------------------------------------------------
// Distribution equivalence and migration transparency
// ---------------------------------------------------------------------------

// A skewed-access phase program: every node's VPs repeatedly read the
// chunk of `src` initially owned by the right neighbour (remote under the
// initial layout, so the planner has blocks worth moving toward their
// readers) and accumulate into their own elements of `out`. One mid-run
// round also writes `src` itself, so deferred writes must land correctly
// on blocks that have already migrated. Returns the logical contents of
// both arrays — which must not depend on src's distribution.
std::vector<int64_t> run_program(const PpmConfig& c, Distribution dist,
                                 RunResult* result = nullptr) {
  const uint64_t n = 24 * 16;  // 48 blocks of 8 int64s at 64-byte blocks
  std::vector<int64_t> content;
  const RunResult r = run(c, [&](Env& env) {
    auto src = env.global_array<int64_t>(n, dist);
    auto out = env.global_array<int64_t>(n, Distribution::kBlock);
    const auto nodes = static_cast<uint64_t>(env.node_count());
    const auto me = static_cast<uint64_t>(env.node_id());
    const uint64_t k = n / nodes + (me < n % nodes ? 1 : 0);
    const uint64_t shift = n / nodes;  // the next node's initial chunk
    auto vps = env.ppm_do(k);
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = vp.global_rank();
      src.set(i, static_cast<int64_t>(3 * i + 1));
    });
    for (int round = 0; round < 6; ++round) {
      vps.global_phase([&](Vp& vp) {
        const uint64_t i = vp.global_rank();
        out.add(i, src.get((i + shift) % n) % 1000);
        if (round == 3) src.add(i, static_cast<int64_t>(i % 5));
      });
    }
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        for (uint64_t i = 0; i < n; ++i) content.push_back(src.get(i));
        for (uint64_t i = 0; i < n; ++i) content.push_back(out.get(i));
      }
    });
  });
  if (result != nullptr) *result = r;
  return content;
}

TEST(Migration, ContentsMatchStaticLayoutsAndBlocksMove) {
  for (const int nodes : {2, 3, 4}) {
    const auto blocked = run_program(cfg(nodes), Distribution::kBlock);
    const auto cyclic = run_program(cfg(nodes), Distribution::kCyclic);
    PpmConfig adaptive = cfg(nodes);
    adaptive.runtime.adaptive_distribution = true;
    RunResult r;
    const auto moved = run_program(adaptive, Distribution::kAdaptive, &r);
    // Bit-identical logical contents under every layout, static or moving.
    EXPECT_EQ(blocked, cyclic) << nodes << " nodes";
    EXPECT_EQ(blocked, moved) << nodes << " nodes";
    // The skewed access pattern must actually trigger migration.
    EXPECT_GT(r.blocks_migrated, 0u) << nodes << " nodes";
    EXPECT_GT(r.migration_bytes, 0u) << nodes << " nodes";
    EXPECT_GT(r.remote_to_local_conversions, 0u) << nodes << " nodes";
  }
}

TEST(Migration, SchedulePolicyDoesNotChangeThePlan) {
  // Access counters sum per-element contributions, so they are identical
  // under any VP-to-core schedule — and with them the migration plan and
  // the traffic it saves. Static vs dynamic scheduling must agree on the
  // counters, not just on contents.
  auto run_sched = [&](SchedulePolicy sched) {
    PpmConfig c = cfg(3, 3);
    c.runtime.adaptive_distribution = true;
    c.runtime.schedule = sched;
    RunResult r;
    auto content = run_program(c, Distribution::kAdaptive, &r);
    return std::pair(content, r.blocks_migrated);
  };
  const auto [static_content, static_moves] =
      run_sched(SchedulePolicy::kStatic);
  const auto [dynamic_content, dynamic_moves] =
      run_sched(SchedulePolicy::kDynamic);
  EXPECT_EQ(static_content, dynamic_content);
  EXPECT_EQ(static_moves, dynamic_moves);
  EXPECT_GT(static_moves, 0u);
}

TEST(Migration, SkewedAccessSavesNetworkBytes) {
  // The acceptance ablation in miniature: under a read-skewed program
  // whose block payloads dominate the planner's own counter exchange,
  // adaptive placement must strictly cut wire traffic. Blocks are sized
  // so one block fetch outweighs a planning round's share of overhead.
  auto traffic = [&](bool adaptive_on) {
    PpmConfig c = cfg(4);
    c.runtime.read_block_bytes = 512;  // 64 int64s per migration block
    c.runtime.adaptive_distribution = adaptive_on;
    const uint64_t n = 64 * 48;  // 48 blocks, 12 per node initially
    RunResult r = run(c, [&](Env& env) {
      auto a = env.global_array<int64_t>(n, Distribution::kAdaptive);
      const auto nodes = static_cast<uint64_t>(env.node_count());
      const uint64_t shift = n / nodes;
      auto vps = env.ppm_do(n / nodes);
      vps.global_phase([&](Vp& vp) {
        a.set(vp.global_rank(), static_cast<int64_t>(vp.global_rank()));
      });
      for (int round = 0; round < 6; ++round) {
        vps.global_phase([&](Vp& vp) {
          const uint64_t i = vp.global_rank();
          (void)a.get((i + shift) % n);
        });
      }
    });
    if (adaptive_on) {
      EXPECT_GT(r.blocks_migrated, 0u);
    } else {
      EXPECT_EQ(r.blocks_migrated, 0u);
    }
    return r.network_bytes;
  };
  EXPECT_LT(traffic(true), traffic(false));
}

TEST(Migration, ExplicitRebalanceRunsOneShot) {
  // adaptive_distribution off: the layout stays put until the program
  // asks, then one planning round runs at the next global commit.
  const uint64_t n = 24 * 8;
  std::vector<int64_t> content;
  RunResult r;
  r = run(cfg(2), [&](Env& env) {
    auto a = env.global_array<int64_t>(n, Distribution::kAdaptive);
    const uint64_t half = n / 2;
    auto vps = env.ppm_do(half);
    vps.global_phase([&](Vp& vp) {
      a.set(vp.global_rank(), static_cast<int64_t>(vp.global_rank()));
    });
    // Both nodes read only the other node's half to build counters; no
    // migration may happen without the hint.
    for (int round = 0; round < 2; ++round) {
      vps.global_phase([&](Vp& vp) {
        const uint64_t i = vp.global_rank();
        (void)a.get((i + half) % n);
      });
    }
    env.rebalance(a);  // collective hint: plan at the next global commit
    vps.global_phase([&](Vp& vp) {
      // Still read-only: the planning commit must see reads dominating.
      (void)a.get((vp.global_rank() + half) % n);
    });
    // Blocks have moved; a write-after-migration round must land its
    // deferred writes on the new owners.
    vps.global_phase([&](Vp& vp) {
      const uint64_t i = vp.global_rank();
      a.add(i, a.get((i + half) % n));
    });
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        for (uint64_t i = 0; i < n; ++i) content.push_back(a.get(i));
      }
    });
  });
  EXPECT_GT(r.blocks_migrated, 0u);
  EXPECT_GT(r.remote_to_local_conversions, 0u);
  // Contents must equal the closed form: a[i] = i + ((i + half) % n).
  ASSERT_EQ(content.size(), n);
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(content[i], static_cast<int64_t>(i + (i + n / 2) % n))
        << "element " << i;
  }
}

TEST(Migration, ValidatorStaysLockstepClean) {
  // Migration planning folds into the lockstep fingerprint; identical
  // plans on every node must keep the sanitizer quiet.
  PpmConfig c = cfg(3);
  c.runtime.adaptive_distribution = true;
  c.runtime.validate_phases = true;
  RunResult r;
  run_program(c, Distribution::kAdaptive, &r);
  EXPECT_GT(r.blocks_migrated, 0u);
  EXPECT_EQ(r.check_report.lockstep_mismatches, 0u);
  EXPECT_EQ(r.check_report.set_set_conflicts, 0u);
  EXPECT_EQ(r.check_report.mixed_op_conflicts, 0u);
}

TEST(Migration, AsyncReadsSeeMigratedBlocks) {
  // Reads outside global phases route through the owner map too; issued
  // after a migrating commit they must resolve against the new placement
  // and still see the committed values.
  PpmConfig c = cfg(2);
  c.runtime.adaptive_distribution = true;
  std::vector<int64_t> seen;
  run(c, [&](Env& env) {
    const uint64_t n = 24 * 8;
    auto a = env.global_array<int64_t>(n, Distribution::kAdaptive);
    const uint64_t half = n / 2;
    auto vps = env.ppm_do(half);
    vps.global_phase([&](Vp& vp) {
      a.set(vp.global_rank(), static_cast<int64_t>(vp.global_rank() * 2));
    });
    for (int round = 0; round < 3; ++round) {
      vps.global_phase([&](Vp& vp) {
        const uint64_t i = vp.global_rank();
        (void)a.get((i + half) % n);  // build skewed counters
      });
    }
    // By now every block has moved to its reader. Async reads from node 0
    // spread over both halves of the array.
    if (env.node_id() == 0) {
      seen.assign(4, -1);  // indexed by rank: core interleaving varies
      auto async = env.ppm_do_async(4);
      async.node_phase([&](Vp& vp) {
        const uint64_t i = vp.node_rank() * (n / 4) + 1;
        seen[vp.node_rank()] = a.get(i);
      });
    }
    env.barrier();
  });
  ASSERT_EQ(seen.size(), 4u);
  for (uint64_t j = 0; j < 4; ++j) {
    const uint64_t i = j * (24 * 8 / 4) + 1;
    EXPECT_EQ(seen[j], static_cast<int64_t>(i * 2)) << "element " << i;
  }
}

}  // namespace
}  // namespace ppm
