// Semantics of the PPM phase model (DESIGN.md §5): phase-start reads,
// deferred writes, deterministic conflict resolution, accumulate ops,
// node vs global phases.
#include <gtest/gtest.h>

#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

PpmConfig cfg(int nodes, int cores) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = cores;
  return c;
}

struct Shape {
  int nodes;
  int cores;
};

class PhaseSemantics : public ::testing::TestWithParam<Shape> {
 protected:
  PpmConfig config() const {
    return cfg(GetParam().nodes, GetParam().cores);
  }
};

TEST_P(PhaseSemantics, WritesTakeEffectAfterPhaseEnd) {
  std::vector<double> observed_during, observed_after;
  run(config(), [&](Env& env) {
    auto a = env.global_array<double>(64);
    auto vps = env.ppm_do(64 / static_cast<uint64_t>(env.node_count()));
    vps.global_phase([&](Vp& vp) { a.set(vp.global_rank(), 2.5); });
    vps.global_phase([&](Vp& vp) {
      // Value from the previous commit is visible...
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        observed_during.push_back(a.get(0));
      }
      // ...and this phase's writes are not, even to our own element.
      a.set(vp.global_rank(), 9.0);
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        observed_during.push_back(a.get(vp.global_rank()));
      }
    });
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        observed_after.push_back(a.get(vp.global_rank()));
      }
    });
  });
  ASSERT_EQ(observed_during.size(), 2u);
  EXPECT_DOUBLE_EQ(observed_during[0], 2.5);  // previous phase committed
  EXPECT_DOUBLE_EQ(observed_during[1], 2.5);  // own write still deferred
  ASSERT_EQ(observed_after.size(), 1u);
  EXPECT_DOUBLE_EQ(observed_after[0], 9.0);
}

TEST_P(PhaseSemantics, ArraysStartZeroInitialized) {
  double sum = -1;
  run(config(), [&](Env& env) {
    auto a = env.global_array<double>(100);
    auto vps = env.ppm_do(env.node_id() == 0 ? 100 : 0);
    double local = 0;
    vps.global_phase([&](Vp& vp) { local += a.get(vp.node_rank()); });
    if (env.node_id() == 0) sum = local;
  });
  EXPECT_DOUBLE_EQ(sum, 0.0);
}

TEST_P(PhaseSemantics, EveryVpSeesConsistentSnapshot) {
  // Phase 1 writes f(i); phase 2 has every VP read every element and check.
  const uint64_t n = 96;
  int mismatches = -1;
  run(config(), [&](Env& env) {
    auto a = env.global_array<int64_t>(n);
    const uint64_t k = n / static_cast<uint64_t>(env.node_count());
    auto vps = env.ppm_do(k);
    vps.global_phase([&](Vp& vp) {
      a.set(vp.global_rank(), static_cast<int64_t>(vp.global_rank() * 3));
    });
    int bad = 0;
    vps.global_phase([&](Vp& vp) {
      (void)vp;
      for (uint64_t i = 0; i < n; ++i) {
        if (a.get(i) != static_cast<int64_t>(i * 3)) ++bad;
      }
    });
    if (env.node_id() == 0) mismatches = bad;
  });
  EXPECT_EQ(mismatches, 0);
}

TEST_P(PhaseSemantics, ConflictingSetsResolveToHighestVpRank) {
  // All VPs write to element 0: the highest global rank must win,
  // regardless of node count, scheduling, or arrival order.
  int64_t final_value = -1;
  uint64_t total_vps = 0;
  run(config(), [&](Env& env) {
    auto a = env.global_array<int64_t>(4);
    auto vps = env.ppm_do(37);  // deliberately not a multiple of cores
    total_vps = vps.global_size();
    vps.global_phase([&](Vp& vp) {
      a.set(0, static_cast<int64_t>(vp.global_rank()));
    });
    vps.global_phase([&](Vp& vp) {
      if (vp.global_rank() == 0) final_value = a.get(0);
    });
  });
  EXPECT_EQ(final_value, static_cast<int64_t>(total_vps - 1));
}

TEST_P(PhaseSemantics, SameVpLastProgramOrderWriteWins) {
  int64_t final_value = -1;
  run(config(), [&](Env& env) {
    auto a = env.global_array<int64_t>(1);
    auto vps = env.ppm_do(env.node_id() == env.node_count() - 1 ? 1 : 0);
    vps.global_phase([&](Vp& vp) {
      (void)vp;
      a.set(0, 5);
      a.set(0, 6);
      a.set(0, 7);
    });
    vps.global_phase([&](Vp& vp) {
      (void)vp;
      final_value = a.get(0);  // runs on the single VP that exists
    });
  });
  EXPECT_EQ(final_value, 7);
}

TEST_P(PhaseSemantics, AccumulateAddGathersAllContributions) {
  // Histogram-style conflict: every VP adds into a handful of bins.
  const uint64_t bins = 4;
  std::vector<int64_t> result;
  run(config(), [&](Env& env) {
    auto hist = env.global_array<int64_t>(bins);
    auto vps = env.ppm_do(25);
    vps.global_phase([&](Vp& vp) {
      hist.add(vp.global_rank() % bins, 1);
    });
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        for (uint64_t b = 0; b < bins; ++b) result.push_back(hist.get(b));
      }
    });
  });
  ASSERT_EQ(result.size(), bins);
  const int64_t total_vps = 25 * GetParam().nodes;
  int64_t sum = 0;
  for (int64_t c : result) sum += c;
  EXPECT_EQ(sum, total_vps);
  // Bins differ by at most... every global rank r adds to r % 4.
  for (uint64_t b = 0; b < bins; ++b) {
    int64_t expect = 0;
    for (int64_t r = 0; r < total_vps; ++r) {
      if (static_cast<uint64_t>(r) % bins == b) ++expect;
    }
    EXPECT_EQ(result[b], expect) << "bin " << b;
  }
}

TEST_P(PhaseSemantics, MinMaxUpdates) {
  int64_t got_min = -1, got_max = -1;
  run(config(), [&](Env& env) {
    auto a = env.global_array<int64_t>(2);
    auto vps = env.ppm_do(10);
    vps.global_phase([&](Vp& vp) {
      if (vp.global_rank() == 0) {
        a.set(0, 1'000'000);  // seed the min slot high
      }
    });
    vps.global_phase([&](Vp& vp) {
      const auto r = static_cast<int64_t>(vp.global_rank());
      a.min_update(0, 100 - r);
      a.max_update(1, r * r);
    });
    vps.global_phase([&](Vp& vp) {
      if (vp.global_rank() == 0) {
        got_min = a.get(0);
        got_max = a.get(1);
      }
    });
  });
  const int64_t total = 10 * GetParam().nodes;
  EXPECT_EQ(got_min, 100 - (total - 1));
  EXPECT_EQ(got_max, (total - 1) * (total - 1));
}

TEST_P(PhaseSemantics, NodeSharedIsPerNodeInstance) {
  std::vector<int64_t> per_node_value;
  run(config(), [&](Env& env) {
    auto local = env.node_array<int64_t>(8);
    auto vps = env.ppm_do(8);
    // Each node's VPs write their own node id into the node's instance.
    vps.node_phase([&](Vp& vp) {
      local.set(vp.node_rank(), env.node_id() * 100);
    });
    env.barrier();
    if (env.node_id() >= 0) {
      // Read back after commit: each node sees only its own writes.
      vps.node_phase([&](Vp& vp) {
        if (vp.node_rank() == 0) {
          per_node_value.push_back(local.get(7));
        }
      });
    }
  });
  ASSERT_EQ(per_node_value.size(), static_cast<size_t>(GetParam().nodes));
  std::sort(per_node_value.begin(), per_node_value.end());
  for (int n = 0; n < GetParam().nodes; ++n) {
    EXPECT_EQ(per_node_value[static_cast<size_t>(n)], n * 100);
  }
}

TEST_P(PhaseSemantics, NodePhaseDefersWritesUntilCommit) {
  int64_t during = -1, after = -1;
  run(config(), [&](Env& env) {
    auto local = env.node_array<int64_t>(4);
    auto vps = env.ppm_do_async(4);
    vps.node_phase([&](Vp& vp) { local.set(vp.node_rank(), 11); });
    vps.node_phase([&](Vp& vp) {
      if (vp.node_rank() == 0 && env.node_id() == 0) during = local.get(1);
      local.set(vp.node_rank(), 22);
    });
    vps.node_phase([&](Vp& vp) {
      if (vp.node_rank() == 0 && env.node_id() == 0) after = local.get(1);
    });
  });
  EXPECT_EQ(during, 11);
  EXPECT_EQ(after, 22);
}

TEST_P(PhaseSemantics, MultiPhaseIterationConverges) {
  // Jacobi-style smoothing on a ring: x'_i = (x_{i-1} + x_{i+1}) / 2.
  // Phase semantics make the double-buffering implicit.
  const uint64_t per_node = 64 / static_cast<uint64_t>(GetParam().nodes);
  const uint64_t n = per_node * static_cast<uint64_t>(GetParam().nodes);
  double spread = -1, total_mass = -1;
  run(config(), [&](Env& env) {
    auto x = env.global_array<double>(n);
    auto vps = env.ppm_do(per_node);
    vps.global_phase([&](Vp& vp) {
      // Initial condition: a single spike.
      x.set(vp.global_rank(), vp.global_rank() == 0 ? 64.0 : 0.0);
    });
    for (int iter = 0; iter < 50; ++iter) {
      vps.global_phase([&](Vp& vp) {
        const uint64_t i = vp.global_rank();
        const double left = x.get((i + n - 1) % n);
        const double mid = x.get(i);
        const double right = x.get((i + 1) % n);
        // Weighted stencil: mixes both parities of the ring (the
        // unweighted average is bipartite and never converges).
        x.set(i, 0.25 * left + 0.5 * mid + 0.25 * right);
      });
    }
    double lo = 1e300, hi = -1e300, sum = 0;
    vps.global_phase([&](Vp& vp) {
      (void)vp;
      if (vp.node_rank() == 0 && env.node_id() == 0) {
        for (uint64_t i = 0; i < n; ++i) {
          const double v = x.get(i);
          lo = std::min(lo, v);
          hi = std::max(hi, v);
          sum += v;
        }
        spread = hi - lo;
        total_mass = sum;
      }
    });
  });
  // Diffusion smooths the spike (initial spread = 64; after 50 steps the
  // Gaussian peak is ~64/sqrt(2*pi*25) ~ 5.1) and conserves total mass.
  EXPECT_GE(spread, 0.0);
  EXPECT_LT(spread, 8.0);
  EXPECT_NEAR(total_mass, 64.0, 1e-9);
}

TEST_P(PhaseSemantics, VpRanksAreConsistent) {
  // node_rank in [0, K_local); global ranks partition [0, total).
  uint64_t total = 0;
  std::vector<uint64_t> all_globals;
  run(config(), [&](Env& env) {
    const uint64_t k = 5 + static_cast<uint64_t>(env.node_id());
    auto vps = env.ppm_do(k);  // different K per node (paper §3.3)
    total = vps.global_size();
    auto seen = env.global_array<int64_t>(vps.global_size());
    vps.global_phase([&](Vp& vp) {
      EXPECT_LT(vp.node_rank(), k);
      EXPECT_EQ(vp.global_rank(), vps.global_offset() + vp.node_rank());
      seen.add(vp.global_rank(), 1);
    });
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        for (uint64_t i = 0; i < vps.global_size(); ++i) {
          all_globals.push_back(static_cast<uint64_t>(seen.get(i)));
        }
      }
    });
  });
  uint64_t expect_total = 0;
  for (int n = 0; n < GetParam().nodes; ++n) {
    expect_total += 5 + static_cast<uint64_t>(n);
  }
  EXPECT_EQ(total, expect_total);
  ASSERT_EQ(all_globals.size(), expect_total);
  for (uint64_t c : all_globals) EXPECT_EQ(c, 1u);  // each rank exactly once
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PhaseSemantics,
    ::testing::Values(Shape{1, 1}, Shape{1, 4}, Shape{2, 1}, Shape{2, 4},
                      Shape{4, 2}, Shape{3, 3}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores);
    });

}  // namespace
}  // namespace ppm
