// Cyclic vs block data distribution of global shared arrays.
#include <gtest/gtest.h>

#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

PpmConfig cfg(int nodes, int cores = 2) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = cores;
  return c;
}

struct Shape {
  int nodes;
  int cores;
  bool bundle;
};

class CyclicDistribution : public ::testing::TestWithParam<Shape> {
 protected:
  PpmConfig config() const {
    PpmConfig c = cfg(GetParam().nodes, GetParam().cores);
    c.runtime.bundle_reads = GetParam().bundle;
    return c;
  }
};

TEST_P(CyclicDistribution, OwnershipIsRoundRobin) {
  run(config(), [&](Env& env) {
    auto a = env.global_array<double>(23, Distribution::kCyclic);
    for (uint64_t i = 0; i < 23; ++i) {
      EXPECT_EQ(a.owner(i), static_cast<int>(i % env.node_count()));
    }
    EXPECT_EQ(a.distribution(), Distribution::kCyclic);
    // local_count: elements i with i % nodes == node_id.
    uint64_t expect = 0;
    for (uint64_t i = 0; i < 23; ++i) {
      if (static_cast<int>(i % env.node_count()) == env.node_id()) ++expect;
    }
    EXPECT_EQ(a.local_count(), expect);
    EXPECT_THROW((void)a.local_begin(), Error);
  });
}

TEST_P(CyclicDistribution, ReadWriteRoundTripAllElements) {
  const uint64_t n = 57;
  std::vector<int64_t> got;
  run(config(), [&](Env& env) {
    auto a = env.global_array<int64_t>(n, Distribution::kCyclic);
    // Cover every element with VPs spread evenly over nodes.
    const auto nodes = static_cast<uint64_t>(env.node_count());
    const auto me = static_cast<uint64_t>(env.node_id());
    const uint64_t k = n / nodes + (me < n % nodes ? 1 : 0);
    auto vps = env.ppm_do(k);
    vps.global_phase([&](Vp& vp) {
      a.set(vp.global_rank(), static_cast<int64_t>(vp.global_rank() * 3));
    });
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        for (uint64_t i = 0; i < n; ++i) got.push_back(a.get(i));
      }
    });
  });
  ASSERT_EQ(got.size(), n);
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], static_cast<int64_t>(i * 3)) << "element " << i;
  }
}

TEST_P(CyclicDistribution, AccumulatesAcrossNodes) {
  int64_t total = -1;
  run(config(), [&](Env& env) {
    auto a = env.global_array<int64_t>(5, Distribution::kCyclic);
    auto vps = env.ppm_do(20);
    vps.global_phase([&](Vp& vp) { a.add(vp.global_rank() % 5, 1); });
    vps.global_phase([&](Vp& vp) {
      if (vp.global_rank() == 0) {
        total = 0;
        for (uint64_t b = 0; b < 5; ++b) total += a.get(b);
      }
    });
  });
  EXPECT_EQ(total, 20 * GetParam().nodes);
}

TEST_P(CyclicDistribution, GatherMixedOwners) {
  std::vector<double> got;
  run(config(), [&](Env& env) {
    auto a = env.global_array<double>(40, Distribution::kCyclic);
    // Initialize via immediate local writes: each node owns i%nodes==me.
    for (uint64_t i = 0; i < 40; ++i) {
      if (a.owner(i) == env.node_id()) a.set(i, static_cast<double>(i) + 0.25);
    }
    env.barrier();
    auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    vps.global_phase([&](Vp&) {
      const std::vector<uint64_t> idx = {39, 0, 17, 22, 5};
      got = a.gather(idx);
    });
  });
  EXPECT_EQ(got, (std::vector<double>{39.25, 0.25, 17.25, 22.25, 5.25}));
}

TEST_P(CyclicDistribution, ViewSnapshotSemantics) {
  std::vector<double> seen;
  run(config(), [&](Env& env) {
    auto a = env.global_array<double>(8, Distribution::kCyclic);
    auto vps = env.ppm_do(1);
    vps.global_phase([&](Vp&) {
      if (a.owner(7) == env.node_id()) a.set(7, 1.5);
    });
    vps.global_phase([&](Vp&) {
      if (env.node_id() == 0) {
        seen.push_back(a.view(7));
        seen.push_back(a.view(7));
      }
      if (a.owner(7) == env.node_id()) a.set(7, 2.5);
    });
    vps.global_phase([&](Vp&) {
      if (env.node_id() == 0) seen.push_back(a.view(7));
    });
  });
  EXPECT_EQ(seen, (std::vector<double>{1.5, 1.5, 2.5}));
}

TEST_P(CyclicDistribution, MatchesBlockDistributionResults) {
  // The same phase program must produce identical logical array contents
  // under either distribution.
  const uint64_t n = 31;
  auto run_with = [&](Distribution dist) {
    std::vector<int64_t> content;
    run(config(), [&](Env& env) {
      auto a = env.global_array<int64_t>(n, dist);
      const auto nodes = static_cast<uint64_t>(env.node_count());
      const auto me = static_cast<uint64_t>(env.node_id());
      const uint64_t k = n / nodes + (me < n % nodes ? 1 : 0);
      auto vps = env.ppm_do(k);
      vps.global_phase([&](Vp& vp) {
        a.set(vp.global_rank(),
              static_cast<int64_t>(vp.global_rank() * vp.global_rank()));
      });
      vps.global_phase([&](Vp& vp) {
        const uint64_t i = vp.global_rank();
        a.add(i, a.get((i + 7) % n));
      });
      vps.global_phase([&](Vp& vp) {
        if (env.node_id() == 0 && vp.node_rank() == 0) {
          for (uint64_t i = 0; i < n; ++i) content.push_back(a.get(i));
        }
      });
    });
    return content;
  };
  EXPECT_EQ(run_with(Distribution::kBlock), run_with(Distribution::kCyclic));
  // Owner-mapped placement (with or without the migration planner armed)
  // must be just as invisible to logical contents.
  EXPECT_EQ(run_with(Distribution::kBlock), run_with(Distribution::kAdaptive));
}

TEST_P(CyclicDistribution, AdaptiveMatchesUnderAutomaticMigration) {
  const uint64_t n = 31;
  auto run_with = [&](Distribution dist, bool adaptive_on) {
    std::vector<int64_t> content;
    PpmConfig c = config();
    c.runtime.adaptive_distribution = adaptive_on;
    c.runtime.read_block_bytes = 16;  // several migration blocks per node
    run(c, [&](Env& env) {
      auto a = env.global_array<int64_t>(n, dist);
      const auto nodes = static_cast<uint64_t>(env.node_count());
      const auto me = static_cast<uint64_t>(env.node_id());
      const uint64_t k = n / nodes + (me < n % nodes ? 1 : 0);
      auto vps = env.ppm_do(k);
      vps.global_phase([&](Vp& vp) {
        a.set(vp.global_rank(),
              static_cast<int64_t>(vp.global_rank() * vp.global_rank()));
      });
      for (int round = 0; round < 4; ++round) {
        vps.global_phase([&](Vp& vp) {
          const uint64_t i = vp.global_rank();
          a.add(i, a.get((i + 7) % n) % 100);
        });
      }
      vps.global_phase([&](Vp& vp) {
        if (env.node_id() == 0 && vp.node_rank() == 0) {
          for (uint64_t i = 0; i < n; ++i) content.push_back(a.get(i));
        }
      });
    });
    return content;
  };
  EXPECT_EQ(run_with(Distribution::kBlock, false),
            run_with(Distribution::kAdaptive, true));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CyclicDistribution,
    ::testing::Values(Shape{1, 1, true}, Shape{2, 2, true},
                      Shape{3, 1, true}, Shape{4, 2, true},
                      Shape{4, 2, false}, Shape{5, 2, true}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores) +
             (info.param.bundle ? "_bundle" : "_nobundle");
    });

}  // namespace
}  // namespace ppm
