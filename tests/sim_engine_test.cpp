#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"

namespace ppm::sim {
namespace {

TEST(Engine, RunsSingleFiberToCompletion) {
  Engine engine;
  bool ran = false;
  engine.spawn("f", [&] { ran = true; });
  engine.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(engine.all_fibers_finished());
}

TEST(Engine, AdvanceMovesVirtualTime) {
  Engine engine;
  int64_t t0 = -1, t1 = -1;
  engine.spawn("f", [&] {
    t0 = engine.now_ns();
    engine.advance_ns(1500);
    t1 = engine.now_ns();
  });
  engine.run();
  EXPECT_EQ(t0, 0);
  EXPECT_EQ(t1, 1500);
}

TEST(Engine, SleepWakesAtRequestedTime) {
  Engine engine;
  int64_t woke_at = -1;
  engine.spawn("f", [&] {
    engine.sleep_until_ns(42'000);
    woke_at = engine.now_ns();
  });
  engine.run();
  EXPECT_EQ(woke_at, 42'000);
}

TEST(Engine, FibersInterleaveByVirtualTime) {
  Engine engine;
  std::vector<std::string> order;
  engine.spawn("slow", [&] {
    engine.advance_ns(100);
    engine.yield();
    order.push_back("slow");
  });
  engine.spawn("fast", [&] {
    engine.advance_ns(10);
    engine.yield();
    order.push_back("fast");
  });
  engine.run();
  ASSERT_EQ(order.size(), 2u);
  // After the yields, the fiber with the smaller virtual clock runs first.
  EXPECT_EQ(order[0], "fast");
  EXPECT_EQ(order[1], "slow");
}

TEST(Engine, StartTimeOffsetsFiberClock) {
  Engine engine;
  int64_t t = -1;
  engine.spawn("late", [&] { t = engine.now_ns(); }, /*start_ns=*/5000);
  engine.run();
  EXPECT_EQ(t, 5000);
}

TEST(Engine, EventCallbacksFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.at(300, [&] { order.push_back(3); });
  engine.at(100, [&] { order.push_back(1); });
  engine.at(200, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeEventsFireInFifoOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.at(50, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, SuspendAndWakeRoundTrip) {
  Engine engine;
  Fiber::Id sleeper_id = 0;
  int64_t woke_at = -1;
  sleeper_id = engine.spawn("sleeper", [&] {
    engine.suspend_current();
    woke_at = engine.now_ns();
  });
  engine.spawn("waker", [&] {
    engine.advance_ns(700);
    engine.wake(sleeper_id, engine.now_ns());
  });
  engine.run();
  EXPECT_EQ(woke_at, 700);
}

TEST(Engine, WakeInPastClampsToFiberClock) {
  Engine engine;
  Fiber::Id sleeper_id = 0;
  int64_t woke_at = -1;
  sleeper_id = engine.spawn("sleeper", [&] {
    engine.advance_ns(1000);  // sleeper is "busy" until t=1000
    engine.suspend_current();
    woke_at = engine.now_ns();
  });
  engine.spawn("waker", [&] {
    engine.advance_ns(10);
    engine.wake(sleeper_id, engine.now_ns());  // wake signal at t=10
  });
  engine.run();
  // Information can arrive early but the fiber's own clock never rewinds.
  EXPECT_EQ(woke_at, 1000);
}

TEST(Engine, FiberExceptionPropagatesFromRun) {
  Engine engine;
  engine.spawn("bad", [] { throw Error("boom"); });
  try {
    engine.run();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Engine, DeadlockIsDetectedAndNamed) {
  Engine engine;
  engine.spawn("stuck-fiber", [&] { engine.suspend_current(); });
  try {
    engine.run();
    FAIL() << "expected deadlock Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("stuck-fiber"), std::string::npos);
  }
}

TEST(Engine, ManyFibersAllComplete) {
  Engine engine;
  int done = 0;
  for (int i = 0; i < 200; ++i) {
    engine.spawn("f" + std::to_string(i), [&engine, &done, i] {
      engine.advance_ns(i * 3);
      engine.yield();
      ++done;
    });
  }
  engine.run();
  EXPECT_EQ(done, 200);
}

TEST(Engine, DeepStackUsageWithinLimit) {
  Engine engine;
  // ~100 frames x ~1KB of locals stays within the 512KB default stack.
  std::function<int(int)> rec = [&](int n) -> int {
    volatile char pad[1024];
    pad[0] = static_cast<char>(n);
    return n == 0 ? pad[0] : rec(n - 1) + 1;
  };
  int result = -1;
  engine.spawn("deep", [&] { result = rec(100); });
  engine.run();
  EXPECT_EQ(result, 100);
}

TEST(Engine, MeasuredCalibrationChargesComputeTime) {
  EngineConfig cfg;
  cfg.calibration = CalibrationMode::kMeasured;
  cfg.calibration_factor = 1.0;
  Engine engine(cfg);
  int64_t t = 0;
  engine.spawn("worker", [&] {
    // Burn a visible amount of CPU.
    volatile double x = 1.0;
    for (int i = 0; i < 2'000'000; ++i) x = x * 1.0000001 + 1e-9;
    t = engine.now_ns();
  });
  engine.run();
  EXPECT_GT(t, 0);  // some wall time was charged
}

TEST(Engine, NestedSpawnFromFiber) {
  Engine engine;
  bool child_ran = false;
  engine.spawn("parent", [&] {
    engine.advance_ns(100);
    engine.spawn("child", [&] {
      EXPECT_GE(engine.now_ns(), 100);
      child_ran = true;
    }, engine.now_ns());
  });
  engine.run();
  EXPECT_TRUE(child_ran);
}

TEST(Engine, FreeFunctionsRequireFiber) {
  EXPECT_THROW(sim::now_ns(), Error);
  EXPECT_THROW(sim::advance_ns(1), Error);
  EXPECT_THROW(sim::yield(), Error);
}

TEST(Engine, FreeFunctionsWorkOnFiber) {
  Engine engine;
  int64_t t = -1;
  engine.spawn("f", [&] {
    sim::advance_ns(250);
    sim::yield();
    sim::sleep_for_ns(250);
    t = sim::now_ns();
  });
  engine.run();
  EXPECT_EQ(t, 500);
}

}  // namespace
}  // namespace ppm::sim
