// Dense matmul: serial reference, PPM row-block version, SUMMA on a 2D
// rank grid with split communicators.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/dense/dense.hpp"

namespace ppm::apps::dense {
namespace {

void expect_equal(const Matrix& got, const Matrix& want, double tol) {
  ASSERT_EQ(got.n, want.n);
  for (uint64_t i = 0; i < got.n; ++i) {
    for (uint64_t j = 0; j < got.n; ++j) {
      ASSERT_NEAR(got.at(i, j), want.at(i, j), tol)
          << "C(" << i << "," << j << ")";
    }
  }
}

TEST(DenseSerial, IdentityIsNeutral) {
  const uint64_t n = 12;
  Matrix eye;
  eye.n = n;
  eye.data.assign(n * n, 0.0);
  for (uint64_t i = 0; i < n; ++i) eye.at(i, i) = 1.0;
  const Matrix a = make_matrix(n, 3);
  expect_equal(matmul_serial(a, eye), a, 1e-15);
  expect_equal(matmul_serial(eye, a), a, 1e-15);
}

TEST(DenseSerial, MatchesNaiveTripleLoop) {
  const uint64_t n = 9;
  const Matrix a = make_matrix(n, 1);
  const Matrix b = make_matrix(n, 2);
  const Matrix c = matmul_serial(a, b);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (uint64_t k = 0; k < n; ++k) acc += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-14);
    }
  }
}

struct Shape {
  int nodes;
  int cores;
  uint64_t n;
};

class DensePpm : public ::testing::TestWithParam<Shape> {};

TEST_P(DensePpm, MatchesSerial) {
  const Matrix a = make_matrix(GetParam().n, 10);
  const Matrix b = make_matrix(GetParam().n, 20);
  const Matrix expect = matmul_serial(a, b);

  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  std::vector<Matrix> results;
  run(cfg, [&](Env& env) { results.push_back(matmul_ppm(env, a, b)); });
  for (const Matrix& c : results) expect_equal(c, expect, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DensePpm,
    ::testing::Values(Shape{1, 2, 16}, Shape{2, 2, 24}, Shape{3, 1, 20},
                      Shape{4, 2, 32}, Shape{5, 2, 17}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores) + "s" +
             std::to_string(info.param.n);
    });

struct SummaShape {
  int nodes;
  int cores;  // total ranks must be a perfect square
  uint64_t n;
};

class DenseSumma : public ::testing::TestWithParam<SummaShape> {};

TEST_P(DenseSumma, MatchesSerial) {
  const Matrix a = make_matrix(GetParam().n, 30);
  const Matrix b = make_matrix(GetParam().n, 40);
  const Matrix expect = matmul_serial(a, b);

  cluster::Machine machine(
      {.nodes = GetParam().nodes, .cores_per_node = GetParam().cores});
  mp::World world(machine);
  std::vector<Matrix> results;
  machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    results.push_back(matmul_mpi_summa(comm, a, b));
  });
  for (const Matrix& c : results) expect_equal(c, expect, 1e-12);
}

TEST(DenseSumma, RejectsNonSquareRankCount) {
  cluster::Machine machine({.nodes = 3, .cores_per_node = 1});
  mp::World world(machine);
  const Matrix a = make_matrix(12, 1);
  EXPECT_THROW(machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    (void)matmul_mpi_summa(comm, a, a);
  }),
               Error);
}

TEST(DenseSumma, RejectsIndivisibleMatrix) {
  cluster::Machine machine({.nodes = 2, .cores_per_node = 2});
  mp::World world(machine);
  const Matrix a = make_matrix(15, 1);  // 2x2 grid, 15 % 2 != 0
  EXPECT_THROW(machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    (void)matmul_mpi_summa(comm, a, a);
  }),
               Error);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseSumma,
    ::testing::Values(SummaShape{1, 1, 12},   // 1x1 grid
                      SummaShape{2, 2, 24},   // 2x2 grid
                      SummaShape{1, 4, 16},   // 2x2 grid on one node
                      SummaShape{4, 4, 32}),  // 4x4 grid
    [](const ::testing::TestParamInfo<SummaShape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores) + "s" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace ppm::apps::dense
