// The overlap engine: VP miss-switching, lookahead prefetch, and
// sender-side write combining. The load-bearing property is that all
// three are pure performance knobs — committed state is bit-identical
// with them on or off — plus counters that prove each mechanism engaged.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

PpmConfig cfg(int nodes, int cores) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = cores;
  return c;
}

uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Mixed remote reads, exact-integer accumulates, and per-VP double sets
// over several phases; returns the full committed contents of both
// arrays. Exact types only where ordering could matter, so the result
// must be bit-identical under any execution interleaving.
struct Committed {
  std::vector<int64_t> bins;
  std::vector<double> vals;
};

Committed run_mixed_workload(const RuntimeOptions& opts) {
  PpmConfig c = cfg(4, 2);
  c.runtime = opts;
  c.runtime.read_block_bytes = 256;  // 32 doubles per block: many blocks
  constexpr uint64_t kVals = 1024;   // 256 doubles per node
  constexpr uint64_t kBins = 64;
  constexpr uint64_t kK = 32;        // VPs per node
  Committed out;
  run(c, [&](Env& env) {
    auto vals = env.global_array<double>(kVals);
    auto bins = env.global_array<int64_t>(kBins);
    const auto n = static_cast<uint64_t>(env.node_id());
    auto vps = env.ppm_do(kK);
    // Seed vals with per-element data.
    vps.global_phase([&](Vp& vp) {
      for (uint64_t i = vp.global_rank(); i < kVals; i += 4 * kK) {
        if (vals.owner(i) == env.node_id()) {
          vals.set(i, static_cast<double>(i) * 0.5);
        }
      }
    });
    for (int round = 0; round < 3; ++round) {
      vps.global_phase([&](Vp& vp) {
        const uint64_t j = vp.node_rank();
        // Scattered remote reads (misses across many blocks).
        int64_t acc = 0;
        for (int t = 0; t < 4; ++t) {
          const uint64_t h =
              mix(n * 1000 + j * 10 + static_cast<uint64_t>(t) +
                  static_cast<uint64_t>(round) * 100000);
          acc += static_cast<int64_t>(vals.get(h % kVals) * 2.0);
        }
        // Same-VP repeated accumulates into a hashed (often remote) bin.
        const uint64_t bin = mix(n * kK + j) % kBins;
        for (int t = 0; t < 5; ++t) bins.add(bin, acc + t);
        // A conflicting set pair: later program order must win.
        const uint64_t slot = (n * kK + j) * 4 % kVals;
        vals.set(slot, static_cast<double>(round));
        vals.set(slot, static_cast<double>(round) + 0.25);
      });
    }
    // Collect the committed contents on node 0.
    auto one = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    one.global_phase([&](Vp&) {
      std::vector<uint64_t> vi(kVals), bi(kBins);
      for (uint64_t i = 0; i < kVals; ++i) vi[i] = i;
      for (uint64_t i = 0; i < kBins; ++i) bi[i] = i;
      out.vals = vals.gather(vi);
      out.bins = bins.gather(bi);
    });
  });
  return out;
}

TEST(Overlap, CommittedStateBitIdenticalAcrossConfigs) {
  RuntimeOptions base;
  const Committed ref = run_mixed_workload(base);
  ASSERT_EQ(ref.vals.size(), 1024u);
  for (const bool overlap : {false, true}) {
    for (const bool combine : {false, true}) {
      for (const auto schedule :
           {SchedulePolicy::kStatic, SchedulePolicy::kDynamic}) {
        RuntimeOptions o;
        o.overlap_reads = overlap;
        o.combine_writes = combine;
        o.schedule = schedule;
        const Committed got = run_mixed_workload(o);
        ASSERT_EQ(got.bins, ref.bins)
            << "overlap=" << overlap << " combine=" << combine;
        // Bitwise comparison: even -0.0 vs 0.0 would be a drift.
        ASSERT_EQ(got.vals.size(), ref.vals.size());
        ASSERT_EQ(std::memcmp(got.vals.data(), ref.vals.data(),
                              got.vals.size() * sizeof(double)),
                  0)
            << "overlap=" << overlap << " combine=" << combine;
      }
    }
  }
}

// One VP per remote block on a 2-core node: without miss-switching every
// fetch is a serialized round trip; with it the core issues the next VP's
// fetch while the first is in flight, so both total stall time and the
// phase's virtual duration drop.
RunResult run_block_walk(bool overlap) {
  PpmConfig c = cfg(2, 2);
  c.runtime.overlap_reads = overlap;
  c.runtime.prefetch_lookahead_blocks = 0;  // isolate miss-switching
  c.runtime.read_block_bytes = 256;         // 32 doubles per block
  return run(c, [&](Env& env) {
    auto a = env.global_array<double>(512);  // 8 blocks per node
    auto vps = env.ppm_do(env.node_id() == 0 ? 8 : 0);
    vps.global_phase([&](Vp& vp) {
      // VP j touches its own remote block: a guaranteed distinct miss.
      (void)a.get(256 + vp.node_rank() * 32);
    });
  });
}

TEST(Overlap, MissSwitchingReducesStallAndDuration) {
  const RunResult off = run_block_walk(false);
  const RunResult on = run_block_walk(true);
  EXPECT_GT(off.fetch_stall_ns, 0u);
  EXPECT_LT(on.fetch_stall_ns, off.fetch_stall_ns);
  EXPECT_LT(on.duration_ns, off.duration_ns);
  // Same blocks move either way; with miss-switching the queued fetches
  // additionally coalesce into list requests (batch_fetches), so wire
  // bytes may only shrink, never grow.
  EXPECT_EQ(on.remote_blocks_fetched, off.remote_blocks_fetched);
  EXPECT_LE(on.network_bytes, off.network_bytes);
}

TEST(Overlap, ExplicitPrefetchCountsHitsAndUnused) {
  PpmConfig c = cfg(2, 1);
  c.runtime.read_block_bytes = 256;
  c.runtime.prefetch_lookahead_blocks = 0;
  RunResult r = run(c, [&](Env& env) {
    auto a = env.global_array<double>(512);
    auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    vps.global_phase([&](Vp& vp) {
      (void)vp;
      // Announce two remote blocks; demand only the first.
      const std::vector<uint64_t> want = {256, 320};
      env.prefetch(a, want);
      (void)a.get(260);  // same block as 256
    });
  });
  EXPECT_EQ(r.prefetch_issued, 2u);
  EXPECT_EQ(r.prefetch_hits, 1u);  // the 320-block was never demanded
  EXPECT_EQ(r.remote_blocks_fetched, 2u);
}

TEST(Overlap, AutomaticStreamPrefetchEngagesOnForwardWalk) {
  PpmConfig c = cfg(2, 1);
  c.runtime.read_block_bytes = 256;
  c.runtime.prefetch_lookahead_blocks = 1;
  RunResult r = run(c, [&](Env& env) {
    auto a = env.global_array<double>(512);
    auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    vps.global_phase([&](Vp& vp) {
      (void)vp;
      // Forward walk over the whole remote chunk: after the first two
      // demand misses establish the stream, lookahead keeps the next
      // block in flight.
      double sum = 0;
      for (uint64_t i = 256; i < 512; ++i) sum += a.get(i);
      (void)sum;
    });
  });
  EXPECT_GT(r.prefetch_issued, 0u);
  EXPECT_GT(r.prefetch_hits, 0u);
}

RunResult run_dup_writes(bool combine, double* out_val) {
  PpmConfig c = cfg(2, 1);
  c.runtime.combine_writes = combine;
  return run(c, [&](Env& env) {
    auto a = env.global_array<double>(64);
    auto vps = env.ppm_do(env.node_id() == 0 ? 4 : 0);
    vps.global_phase([&](Vp& vp) {
      // Each VP accumulates 8 times into its own remote bin.
      const uint64_t bin = 32 + vp.node_rank();
      for (int t = 0; t < 8; ++t) {
        a.add(bin, static_cast<double>(t + 1));
      }
    });
    auto one = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    one.global_phase([&](Vp&) { *out_val = a.get(32); });
  });
}

TEST(Overlap, WriteCombiningShrinksTrafficNotResults) {
  double val_off = 0, val_on = 0;
  const RunResult off = run_dup_writes(false, &val_off);
  const RunResult on = run_dup_writes(true, &val_on);
  EXPECT_EQ(val_off, 36.0);  // 1+2+...+8
  EXPECT_EQ(val_on, 36.0);
  EXPECT_EQ(off.entries_combined, 0u);
  EXPECT_EQ(on.entries_combined, 4u * 7u);
  EXPECT_LT(on.network_bytes, off.network_bytes);
  // write_entries counts issued writes, which combining does not change.
  EXPECT_EQ(on.write_entries, off.write_entries);
}

TEST(Overlap, CombiningPreservesSetAddInterleavings) {
  for (const bool combine : {false, true}) {
    PpmConfig c = cfg(2, 1);
    c.runtime.combine_writes = combine;
    double got = -1;
    RunResult r = run(c, [&](Env& env) {
      auto a = env.global_array<double>(8);
      auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
      vps.global_phase([&](Vp&) {
        a.set(5, 5.0);   // remote element, owned by node 1
        a.add(5, 3.0);
        a.set(5, 2.0);   // supersedes everything above
        a.add(5, 4.0);
        a.add(5, 1.0);   // folds into the previous add when combining
      });
      auto one = env.ppm_do(env.node_id() == 0 ? 1 : 0);
      one.global_phase([&](Vp&) { got = a.get(5); });
    });
    EXPECT_EQ(got, 7.0) << "combine=" << combine;
    if (combine) EXPECT_GE(r.entries_combined, 1u);
  }
}

}  // namespace
}  // namespace ppm
