#include "util/byte_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace ppm {
namespace {

TEST(ByteBuffer, RoundTripScalars) {
  ByteWriter w;
  w.put<int32_t>(-7);
  w.put<uint64_t>(1ULL << 60);
  w.put<double>(3.25);
  w.put<char>('x');

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<int32_t>(), -7);
  EXPECT_EQ(r.get<uint64_t>(), 1ULL << 60);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<char>(), 'x');
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, RoundTripVectorsAndStrings) {
  ByteWriter w;
  const std::vector<double> xs = {1.0, -2.5, 1e300};
  w.put_vector(xs);
  w.put_string("hello phase model");
  w.put_vector(std::vector<int>{});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_vector<double>(), xs);
  EXPECT_EQ(r.get_string(), "hello phase model");
  EXPECT_TRUE(r.get_vector<int>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, RawBytesWithViews) {
  ByteWriter w;
  const uint32_t payload[3] = {1, 2, 3};
  w.put<uint8_t>(9);
  w.put_raw(payload, sizeof(payload));

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<uint8_t>(), 9);
  auto view = r.view(sizeof(payload));
  uint32_t out[3];
  std::memcpy(out, view.data(), sizeof(out));
  EXPECT_EQ(out[2], 3u);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, TruncatedScalarThrows) {
  ByteWriter w;
  w.put<uint16_t>(5);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get<uint64_t>(), Error);
}

TEST(ByteBuffer, TruncatedVectorPayloadThrows) {
  ByteWriter w;
  w.put<uint64_t>(100);  // claims 100 elements with no payload
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_vector<double>(), Error);
}

TEST(ByteBuffer, GarbledLengthDoesNotOverflow) {
  ByteWriter w;
  w.put<uint64_t>(UINT64_MAX);  // adversarial length prefix
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_vector<uint64_t>(), Error);
}

TEST(ByteBuffer, ReadPastEndOfViewThrows) {
  ByteWriter w;
  w.put<uint32_t>(1);
  ByteReader r(w.bytes());
  r.get<uint32_t>();
  EXPECT_THROW(r.view(1), Error);
  EXPECT_THROW(r.get<uint8_t>(), Error);
}

TEST(ByteBuffer, RemainingTracksCursor) {
  ByteWriter w;
  w.put<uint32_t>(1);
  w.put<uint32_t>(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.get<uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(ByteBuffer, TakeMovesBuffer) {
  ByteWriter w;
  w.put<int>(42);
  Bytes b = std::move(w).take();
  EXPECT_EQ(b.size(), sizeof(int));
}

}  // namespace
}  // namespace ppm
