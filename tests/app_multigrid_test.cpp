// Geometric multigrid: serial components, convergence behavior, and the
// PPM implementation's agreement with the serial reference.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/multigrid/multigrid.hpp"

namespace ppm::apps::multigrid {
namespace {

TEST(MultigridSerial, GridGeometry) {
  const GridLevel g = make_level(8);
  EXPECT_EQ(g.side(), 9u);
  EXPECT_EQ(g.values.size(), 81u);
  EXPECT_THROW(make_level(6), Error);   // not a power of two
  EXPECT_THROW(make_level(1), Error);
}

TEST(MultigridSerial, JacobiReducesResidual) {
  const uint64_t n = 16;
  const GridLevel f = make_rhs(n);
  GridLevel u = make_level(n);
  GridLevel r = make_level(n);
  residual_serial(u, f, r);
  const double r0 = norm_serial(r);
  for (int s = 0; s < 30; ++s) jacobi_serial(u, f, 0.8);
  residual_serial(u, f, r);
  EXPECT_LT(norm_serial(r), r0);
}

TEST(MultigridSerial, JacobiPreservesBoundary) {
  const uint64_t n = 8;
  const GridLevel f = make_rhs(n);
  GridLevel u = make_level(n);
  for (int s = 0; s < 5; ++s) jacobi_serial(u, f, 0.8);
  for (uint64_t k = 0; k <= n; ++k) {
    EXPECT_EQ(u.at(0, k), 0.0);
    EXPECT_EQ(u.at(n, k), 0.0);
    EXPECT_EQ(u.at(k, 0), 0.0);
    EXPECT_EQ(u.at(k, n), 0.0);
  }
}

TEST(MultigridSerial, VcycleConvergesFast) {
  // Textbook multigrid: residual contraction well below 0.2 per V-cycle,
  // independent of grid size.
  for (uint64_t n : {16, 32, 64}) {
    const GridLevel f = make_rhs(n);
    GridLevel u = make_level(n);
    GridLevel r = make_level(n);
    residual_serial(u, f, r);
    double prev = norm_serial(r);
    double worst_factor = 0;
    for (int c = 0; c < 5; ++c) {
      vcycle_serial(u, f, MgOptions{});
      residual_serial(u, f, r);
      const double now = norm_serial(r);
      worst_factor = std::max(worst_factor, now / prev);
      prev = now;
    }
    EXPECT_LT(worst_factor, 0.25) << "n=" << n;
  }
}

TEST(MultigridSerial, VcycleBeatsPlainJacobi) {
  const uint64_t n = 32;
  const GridLevel f = make_rhs(n);
  const MgOptions opts{};
  // Equal smoothing work: 1 V-cycle ~ (pre+post) sweeps per level < 2x
  // fine sweeps; give Jacobi 4x the fine-level sweeps and it still loses.
  GridLevel u_mg = make_level(n);
  vcycle_serial(u_mg, f, opts);
  GridLevel u_j = make_level(n);
  for (int s = 0; s < 16; ++s) jacobi_serial(u_j, f, opts.omega);
  GridLevel r = make_level(n);
  residual_serial(u_mg, f, r);
  const double mg_res = norm_serial(r);
  residual_serial(u_j, f, r);
  const double j_res = norm_serial(r);
  EXPECT_LT(mg_res, 0.5 * j_res);
}

struct Shape {
  int nodes;
  int cores;
  uint64_t n;
};

class DistributedMultigrid : public ::testing::TestWithParam<Shape> {};

TEST_P(DistributedMultigrid, PpmMatchesSerialBitForBit) {
  const uint64_t n = GetParam().n;
  const GridLevel f = make_rhs(n);
  const MgOptions opts{};
  const int cycles = 4;

  // Serial reference with per-cycle residual norms.
  GridLevel u_serial = make_level(n);
  std::vector<double> serial_norms;
  GridLevel r = make_level(n);
  for (int c = 0; c < cycles; ++c) {
    vcycle_serial(u_serial, f, opts);
    residual_serial(u_serial, f, r);
    serial_norms.push_back(norm_serial(r));
  }

  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  std::vector<double> ppm_norms;
  GridLevel u_ppm;
  run(cfg, [&](Env& env) {
    GridLevel u_local;
    auto norms = solve_mg_ppm(env, f, cycles, opts, &u_local);
    if (env.node_id() == 0) {
      ppm_norms = std::move(norms);
      u_ppm = std::move(u_local);
    }
  });

  ASSERT_EQ(ppm_norms.size(), serial_norms.size());
  for (int c = 0; c < cycles; ++c) {
    EXPECT_NEAR(ppm_norms[static_cast<size_t>(c)],
                serial_norms[static_cast<size_t>(c)],
                1e-12 * (1 + serial_norms[static_cast<size_t>(c)]))
        << "cycle " << c;
  }
  // Element updates are the same FP operations in the same order: the
  // solutions agree bit for bit.
  ASSERT_EQ(u_ppm.values.size(), u_serial.values.size());
  for (size_t e = 0; e < u_ppm.values.size(); ++e) {
    EXPECT_EQ(u_ppm.values[e], u_serial.values[e]) << "element " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributedMultigrid,
    ::testing::Values(Shape{1, 1, 16}, Shape{1, 4, 32}, Shape{2, 2, 32},
                      Shape{3, 1, 16}, Shape{4, 2, 64}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores) + "g" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace ppm::apps::multigrid
