#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppm {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  Rng rng(99);
  RunningStat whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_normal() * 3 + 1;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1);
  b.merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Counter, AccumulatesAndResets) {
  Counter c;
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketAssignment) {
  Histogram h({1.0, 10.0, 100.0});
  h.add(0.5);    // bucket 0
  h.add(1.0);    // bucket 0 (inclusive upper bound)
  h.add(5.0);    // bucket 1
  h.add(50.0);   // bucket 2
  h.add(500.0);  // bucket 3 (overflow)
  EXPECT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h({1, 2, 4, 8, 16, 32});
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) h.add(rng.next_double_in(0, 32));
  double prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({3.0, 1.0}), Error);
}

TEST(Histogram, ToStringMentionsAllBuckets) {
  Histogram h({1.0, 2.0});
  h.add(0.5);
  h.add(1.5);
  h.add(9.0);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("-inf"), std::string::npos);
  EXPECT_NE(s.find("+inf"), std::string::npos);
}

}  // namespace
}  // namespace ppm
