// Tenant (partitioned) ppm::Runtime: logical node ids over a physical
// node subset, run-tag fencing of straggler traffic, and quiesce-before-
// reallocation — the core mechanisms ppm::jobs multi-tenancy rests on.
#include <gtest/gtest.h>

#include "cluster/machine.hpp"
#include "core/ppm.hpp"
#include "core/wire.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"

namespace ppm {
namespace {

// Run a tiny SPMD program on an already-started tenant runtime's node
// fibers: every VP writes rank*3 into a 16-element global array; node 0
// reads the committed sum back.
void tenant_program(Runtime& rt, int logical_node, uint64_t* sum_out) {
  NodeRuntime& nr = rt.node(logical_node);
  nr.start();
  Env env(nr);
  auto arr = env.global_array<uint64_t>(16);
  auto g = env.ppm_do(16 / static_cast<uint64_t>(env.node_count()));
  g.global_phase([&](Vp& vp) { arr.set(vp.global_rank(), vp.global_rank() * 3); });
  if (env.node_id() == 0 && sum_out != nullptr) {
    uint64_t s = 0;
    for (uint64_t i = 0; i < 16; ++i) s += arr.get(i);
    *sum_out = s;
  }
  nr.finish();
}

TEST(JobsPartition, TenantRuntimeOnNodeSubset) {
  // A 2-node tenant on physical nodes {2, 3} of a 4-node machine: logical
  // ids are 0/1 inside the program, the translation maps are exact, and
  // the program commits the same state a whole-machine run would.
  cluster::Machine machine({.nodes = 4, .cores_per_node = 2});
  sim::Engine& eng = machine.engine();
  Runtime rt(machine, RuntimeOptions{}, {2, 3}, /*run_tag=*/7);
  EXPECT_EQ(rt.nodes(), 2);
  EXPECT_EQ(rt.run_tag(), 7u);
  EXPECT_EQ(rt.machine_node(0), 2);
  EXPECT_EQ(rt.machine_node(1), 3);
  EXPECT_EQ(rt.logical_node(2), 0);
  EXPECT_EQ(rt.logical_node(3), 1);
  EXPECT_EQ(rt.logical_node(0), -1);  // outside the partition

  uint64_t sum = 0;
  for (int k = 0; k < 2; ++k) {
    machine.spawn_at({2 + k, 0}, strfmt("tenant.n%d", 2 + k),
                     [&rt, k, &sum] { tenant_program(rt, k, &sum); });
  }
  eng.run();
  EXPECT_EQ(sum, 360u);  // 3 * (0 + 1 + ... + 15)
  const RunResult r = rt.collect();
  EXPECT_EQ(r.global_phases, 1u);
  EXPECT_EQ(r.stale_messages_dropped, 0u);
}

TEST(JobsPartition, StaleTagMessageFencedOnNodeReuse) {
  // Tenant A (tag 1) runs on {0, 1} and quiesces; tenant B (tag 2) reuses
  // the same nodes. A straggler message carrying A's tag arrives at B's
  // service loop mid-run: it must be dropped (and counted), never decoded
  // — and B's committed state must be unaffected.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  sim::Engine& eng = machine.engine();
  uint64_t sum_a = 0;
  uint64_t sum_b = 0;
  RunResult result_b;

  eng.spawn("driver", [&] {
    sim::ConditionVar done(eng);
    {
      Runtime ra(machine, RuntimeOptions{}, {0, 1}, /*run_tag=*/1);
      int remaining = 2;
      for (int k = 0; k < 2; ++k) {
        machine.spawn_at({k, 0}, strfmt("a.n%d", k), [&, k] {
          tenant_program(ra, k, &sum_a);
          if (--remaining == 0) done.notify_all();
        });
      }
      done.wait([&] { return remaining == 0; });
      // The nodes must not be handed to B while A's service/worker fibers
      // are still draining.
      ra.wait_runtime_fibers_exited();
    }
    Runtime rb(machine, RuntimeOptions{}, {0, 1}, /*run_tag=*/2);
    int remaining = 2;
    for (int k = 0; k < 2; ++k) {
      machine.spawn_at({k, 0}, strfmt("b.n%d", k), [&, k] {
        NodeRuntime& nr = rb.node(k);
        nr.start();
        Env env(nr);
        if (env.node_id() == 0) {
          // The straggler: a runtime-service message with dead tenant A's
          // run tag and a garbage payload. The tag fence must reject it
          // before any decoding happens.
          net::Message m;
          m.src_node = 0;
          m.src_port = machine.service_port();
          m.dst_node = 1;
          m.dst_port = machine.service_port();
          m.kind = detail::rt_kind(detail::RtMsg::kGetBlock) |
                   detail::rt_tag_bits(1);
          m.payload = Bytes(2, std::byte{0xab});
          machine.fabric().send(std::move(m));
        }
        auto arr = env.global_array<uint64_t>(16);
        auto g = env.ppm_do(8);
        g.global_phase(
            [&](Vp& vp) { arr.set(vp.global_rank(), vp.global_rank() * 3); });
        if (env.node_id() == 0) {
          uint64_t s = 0;
          for (uint64_t i = 0; i < 16; ++i) s += arr.get(i);
          sum_b = s;
        }
        nr.finish();
        if (--remaining == 0) done.notify_all();
      });
    }
    done.wait([&] { return remaining == 0; });
    // Same rule the scheduler follows before reusing or tearing down a
    // tenant: its service/worker fibers must have fully exited first.
    rb.wait_runtime_fibers_exited();
    result_b = rb.collect();
  });
  eng.run();

  EXPECT_EQ(sum_a, 360u);
  EXPECT_EQ(sum_b, 360u);
  EXPECT_EQ(result_b.stale_messages_dropped, 1u);
}

TEST(JobsPartition, WholeMachineRuntimeIsTagZeroIdentity) {
  // The legacy whole-machine constructor must behave exactly as before
  // the refactor: identity node mapping, tag 0, nothing dropped.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime rt(machine, RuntimeOptions{});
  EXPECT_EQ(rt.nodes(), 2);
  EXPECT_EQ(rt.run_tag(), 0u);
  EXPECT_EQ(rt.machine_node(1), 1);
  EXPECT_EQ(rt.logical_node(1), 1);
  uint64_t sum = 0;
  machine.run_per_node([&](int node) { tenant_program(rt, node, &sum); });
  EXPECT_EQ(sum, 360u);
  EXPECT_EQ(rt.collect().stale_messages_dropped, 0u);
}

}  // namespace
}  // namespace ppm
