// trace::analyze on hand-built event sequences with a known critical
// path — the analyzer is a pure function of the events, so every derived
// metric (critical node, imbalance bucket, fetch latency, stall
// attribution, hot-block ranking, fabric totals) is checkable exactly.
#include <gtest/gtest.h>

#include <string>

#include "trace/analyze.hpp"
#include "trace/event.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"

namespace ppm::trace {
namespace {

Event make(EventKind kind, int64_t t_ns, uint64_t a = 0, uint64_t b = 0,
           uint64_t c = 0, uint8_t flags = 0, uint32_t aux = 0) {
  Event e;
  e.kind = kind;
  e.t_ns = t_ns;
  e.a = a;
  e.b = b;
  e.c = c;
  e.flags = flags;
  e.aux = aux;
  return e;
}

constexpr uint64_t kOwnerShift = 40;  // BlockKey packing, owner << 40

/// Two nodes, one global phase. Node 1 computes 290ns (0 -> oh wait, 10 to
/// 300) vs node 0's 100ns, so node 1 bounds the barrier.
Trace build_known_trace() {
  Trace t(/*nodes=*/2, /*capacity_per_track=*/64);

  Recorder& n0 = t.node(0);
  const uint32_t label = n0.intern("foo");
  n0.record(make(EventKind::kPhaseBegin, 0, /*phase=*/0, /*k=*/4, label,
                 kFlagBit0));
  // One fetch inside the phase: issued at 20, stalled from 30 to 80,
  // response at 80 (latency 60).
  n0.record(make(EventKind::kCacheMiss, 15, /*array=*/1,
                 (uint64_t{1} << kOwnerShift) | 0));
  n0.record(make(EventKind::kFetchIssued, 20, /*array=*/1,
                 (uint64_t{1} << kOwnerShift) | 0, /*req=*/7));
  n0.record(make(EventKind::kFetchDone, 80, /*array=*/1,
                 (uint64_t{1} << kOwnerShift) | 0, /*req=*/7));
  n0.record(make(EventKind::kFetchStall, 80, /*req=*/7, 0, /*start=*/30));
  n0.record(make(EventKind::kCacheHit, 90, 1, (uint64_t{1} << kOwnerShift)));
  n0.record(make(EventKind::kCacheHit, 95, 1, (uint64_t{1} << kOwnerShift)));
  n0.record(make(EventKind::kPhaseComputeDone, 100, 0));
  n0.record(make(EventKind::kPhaseCommitted, 150, 0));

  Recorder& n1 = t.node(1);
  const uint32_t label1 = n1.intern("foo");
  n1.record(make(EventKind::kPhaseBegin, 10, 0, 4, label1, kFlagBit0));
  // An abandoned prefetch: matched but excluded from latency.
  n1.record(make(EventKind::kFetchIssued, 30, /*array=*/2,
                 (uint64_t{0} << kOwnerShift) | 8, /*req=*/9, kFlagBit0));
  n1.record(make(EventKind::kFetchDone, 200, 2,
                 (uint64_t{0} << kOwnerShift) | 8, 9, kFlagBit0));
  n1.record(make(EventKind::kPhaseComputeDone, 300, 0));
  n1.record(make(EventKind::kPhaseCommitted, 360, 0));

  // Two fabric messages, one carrying 25ns of fault-injected delay.
  t.fabric().record(make(EventKind::kMsgSend, 40, 0, 128, 90, 0, 0));
  t.fabric().record(make(EventKind::kMsgSend, 60, 0, 256, 130, 0, 25));

  t.engine().record(make(EventKind::kEngineStep, 100, 12));
  return t;
}

TEST(TraceAnalyzeTest, CriticalPathOfKnownPhase) {
  const Trace t = build_known_trace();
  const Summary s = analyze(t);

  ASSERT_EQ(s.phases.size(), 1u);
  const PhaseCritical& p = s.phases[0];
  EXPECT_EQ(p.phase_index, 0u);
  EXPECT_TRUE(p.global);
  EXPECT_EQ(p.label, "foo");
  EXPECT_EQ(p.nodes_seen, 2);
  EXPECT_EQ(p.critical_node, 1) << "node 1 computed 290ns vs node 0's 100";
  EXPECT_EQ(p.start_ns, 0);
  EXPECT_EQ(p.committed_ns, 360);
  EXPECT_EQ(p.compute_max_ns, 290);
  EXPECT_EQ(p.compute_min_ns, 100);
  EXPECT_EQ(p.commit_max_ns, 60);  // max(150-100, 360-300)
  EXPECT_EQ(p.stall_ns, 50u);      // node 0's 30 -> 80 park
  EXPECT_NEAR(p.imbalance(), 190.0 / 290.0, 1e-9);
}

TEST(TraceAnalyzeTest, ImbalanceHistogramBucket) {
  const Summary s = analyze(build_known_trace());
  // imbalance 0.655... lands in bucket floor(0.655 * 8) = 5.
  uint64_t total = 0;
  for (const uint64_t c : s.imbalance_hist) total += c;
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(s.imbalance_hist[5], 1u);
}

TEST(TraceAnalyzeTest, FetchAndCacheTotals) {
  const Summary s = analyze(build_known_trace());
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.fetches, 2u);
  EXPECT_EQ(s.fetch_latency_ns, 60u)
      << "abandoned responses must not count toward latency";
  EXPECT_EQ(s.stall_ns, 50u);
  EXPECT_NEAR(s.bundling_efficiency(), 2.0 / 3.0, 1e-9);
  // 1 - 50/60 overlap.
  EXPECT_NEAR(s.overlap_efficiency(), 1.0 - 50.0 / 60.0, 1e-9);
}

TEST(TraceAnalyzeTest, HotBlocksDecodeOwnerAndElement) {
  const Summary s = analyze(build_known_trace());
  ASSERT_EQ(s.hot_blocks.size(), 2u);
  // Equal counts: ascending (array, owner, element) tie-break.
  EXPECT_EQ(s.hot_blocks[0].array, 1u);
  EXPECT_EQ(s.hot_blocks[0].owner, 1u);
  EXPECT_EQ(s.hot_blocks[0].first_elem, 0u);
  EXPECT_EQ(s.hot_blocks[0].fetches, 1u);
  EXPECT_EQ(s.hot_blocks[1].array, 2u);
  EXPECT_EQ(s.hot_blocks[1].owner, 0u);
  EXPECT_EQ(s.hot_blocks[1].first_elem, 8u);
}

TEST(TraceAnalyzeTest, LabelRollupAggregatesPhasesByLabel) {
  // Two phases labeled "foo" plus one unlabeled phase: the rollup must
  // fold the foo instances together and bucket the unlabeled one as "-".
  Trace t(/*nodes=*/1, /*capacity_per_track=*/64);
  Recorder& n0 = t.node(0);
  const uint32_t foo = n0.intern("foo");
  n0.record(make(EventKind::kPhaseBegin, 0, 0, 4, foo, kFlagBit0));
  n0.record(make(EventKind::kFetchStall, 80, 7, 0, /*start=*/30));
  n0.record(make(EventKind::kPhaseComputeDone, 100, 0));
  n0.record(make(EventKind::kPhaseCommitted, 120, 0));
  n0.record(make(EventKind::kPhaseBegin, 200, 1, 4, foo, kFlagBit0));
  n0.record(make(EventKind::kPhaseComputeDone, 230, 1));
  n0.record(make(EventKind::kPhaseCommitted, 240, 1));
  n0.record(make(EventKind::kPhaseBegin, 300, 2, 4, 0, kFlagBit0));
  n0.record(make(EventKind::kPhaseComputeDone, 310, 2));
  n0.record(make(EventKind::kPhaseCommitted, 315, 2));

  const Summary s = analyze(t);
  ASSERT_EQ(s.labels.size(), 2u) << "foo and the unlabeled bucket";
  const LabelRollup& lf = s.labels[0];
  EXPECT_EQ(lf.label, "foo") << "first-appearance order";
  EXPECT_EQ(lf.phases, 2u);
  EXPECT_EQ(lf.compute_ns, 100 + 30);
  EXPECT_EQ(lf.commit_ns, 20 + 10);
  EXPECT_EQ(lf.stall_ns, 50u);
  EXPECT_NEAR(lf.stall_share(), 50.0 / 180.0, 1e-9);
  const LabelRollup& lu = s.labels[1];
  EXPECT_EQ(lu.label, "-");
  EXPECT_EQ(lu.phases, 1u);
  EXPECT_EQ(lu.compute_ns, 10);
  EXPECT_EQ(lu.stall_ns, 0u);
  EXPECT_NE(s.to_string().find("per-label rollup"), std::string::npos);
}

TEST(TraceAnalyzeTest, FabricTotalsAndEventCounts) {
  const Trace t = build_known_trace();
  const Summary s = analyze(t);
  EXPECT_EQ(s.messages, 2u);
  EXPECT_EQ(s.fault_delay_ns, 25u);
  EXPECT_EQ(s.events, t.total_recorded());
  EXPECT_EQ(s.dropped, 0u);
  const std::string text = s.to_string();
  EXPECT_NE(text.find("foo"), std::string::npos);
  EXPECT_NE(text.find("fabric: 2 messages"), std::string::npos);
}

TEST(TraceAnalyzeTest, ExportOfHandBuiltTraceIsWellFormed) {
  const Trace t = build_known_trace();
  const std::string json = to_chrome_json(t);
  // Spans, instants, and both synthetic tracks must appear.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fabric\""), std::string::npos);
  EXPECT_NE(json.find("\"sim\""), std::string::npos);
  EXPECT_NE(json.find("foo"), std::string::npos);
  EXPECT_EQ(json.find("events_dropped"), std::string::npos);
  // Deterministic: same Trace, same bytes.
  EXPECT_EQ(json, to_chrome_json(build_known_trace()));

  const Bytes bin = to_binary(t);
  ASSERT_GE(bin.size(), 8u);
  EXPECT_EQ(bin, to_binary(build_known_trace()));
}

}  // namespace
}  // namespace ppm::trace
