#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ppm::sim {
namespace {

TEST(ConditionVar, WaitReleasedByNotify) {
  Engine engine;
  ConditionVar cv(engine);
  bool flag = false;
  int64_t woke_at = -1;
  engine.spawn("waiter", [&] {
    cv.wait([&] { return flag; });
    woke_at = engine.now_ns();
  });
  engine.spawn("setter", [&] {
    engine.advance_ns(900);
    flag = true;
    cv.notify_all();
  });
  engine.run();
  EXPECT_EQ(woke_at, 900);
}

TEST(ConditionVar, PredicateAlreadyTrueDoesNotBlock) {
  Engine engine;
  ConditionVar cv(engine);
  bool done = false;
  engine.spawn("w", [&] {
    cv.wait([] { return true; });
    done = true;
  });
  engine.run();
  EXPECT_TRUE(done);
}

TEST(ConditionVar, SpuriousNotifyReblocksUntilPredicateHolds) {
  // Advances must be >= kSmallAdvanceNs: below that threshold the engine
  // deliberately skips the conservative scheduling point.
  Engine engine;
  ConditionVar cv(engine);
  int value = 0;
  int64_t woke_at = -1;
  engine.spawn("waiter", [&] {
    cv.wait([&] { return value >= 2; });
    woke_at = engine.now_ns();
  });
  engine.spawn("ticker", [&] {
    engine.advance_ns(100 * kSmallAdvanceNs);
    value = 1;
    cv.notify_all();  // predicate still false -> waiter re-blocks
    engine.advance_ns(100 * kSmallAdvanceNs);
    value = 2;
    cv.notify_all();
  });
  engine.run();
  EXPECT_EQ(woke_at, 200 * kSmallAdvanceNs);
}

TEST(ConditionVar, NotifyOneWakesSingleWaiter) {
  Engine engine;
  ConditionVar cv(engine);
  bool open = false;
  int through = 0;
  for (int i = 0; i < 3; ++i) {
    engine.spawn("w" + std::to_string(i), [&] {
      cv.wait([&] { return open; });
      ++through;
      open = false;  // close the gate behind us
    });
  }
  engine.spawn("opener", [&] {
    engine.advance_ns(10);
    open = true;
    cv.notify_one();
  });
  EXPECT_THROW(engine.run(), Error);  // two waiters legitimately deadlock
  EXPECT_EQ(through, 1);
}

TEST(WaitList, WakeAllReleasesOnlyCurrentWaiters) {
  Engine engine;
  WaitList wl(engine);
  bool flag = false;
  int through = 0;
  for (int i = 0; i < 3; ++i) {
    engine.spawn("w" + std::to_string(i), [&] {
      wl.wait([&] { return flag; });
      ++through;
    });
  }
  engine.spawn("setter", [&] {
    engine.advance_ns(2 * kSmallAdvanceNs);
    EXPECT_EQ(wl.num_waiters(), 3u);
    flag = true;
    wl.wake_all();
  });
  engine.run();
  EXPECT_EQ(through, 3);
  EXPECT_EQ(wl.num_waiters(), 0u);
}

TEST(WaitList, PredicateAlreadyTrueDoesNotEnlist) {
  Engine engine;
  WaitList wl(engine);
  bool done = false;
  engine.spawn("w", [&] {
    wl.wait([] { return true; });
    done = true;
  });
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(wl.num_waiters(), 0u);
}

TEST(WaitList, SpuriousWakeReblocksUntilPredicateHolds) {
  Engine engine;
  WaitList wl(engine);
  int value = 0;
  int64_t woke_at = -1;
  engine.spawn("waiter", [&] {
    wl.wait([&] { return value >= 2; });
    woke_at = engine.now_ns();
  });
  engine.spawn("ticker", [&] {
    engine.advance_ns(100 * kSmallAdvanceNs);
    value = 1;
    wl.wake_all();  // predicate still false -> waiter re-enlists
    engine.advance_ns(100 * kSmallAdvanceNs);
    value = 2;
    wl.wake_all();
  });
  engine.run();
  EXPECT_EQ(woke_at, 200 * kSmallAdvanceNs);
}

TEST(WaitList, TryWakeOfRunnableFiberIsANoOp) {
  // WaitList::wake_all relies on Engine::try_wake tolerating targets that
  // are no longer blocked (woken by someone else, or never suspended).
  // Engine::wake would CHECK-fail on such a target.
  Engine engine;
  WaitList wl(engine);
  bool flag = false;
  bool done = false;
  const Fiber::Id waiter = engine.spawn("waiter", [&] {
    wl.wait([&] { return flag; });
    done = true;
  });
  engine.spawn("waker", [&] {
    engine.advance_ns(2 * kSmallAdvanceNs);
    flag = true;
    wl.wake_all();  // waiter becomes runnable...
    EXPECT_FALSE(engine.try_wake(waiter, engine.now_ns()));  // ...so no-op
  });
  engine.run();
  EXPECT_TRUE(done);
}

TEST(Barrier, ReleasesAtMaxArrivalTime) {
  Engine engine;
  Barrier barrier(engine, 3);
  std::vector<int64_t> release_times(3, -1);
  for (int i = 0; i < 3; ++i) {
    engine.spawn("p" + std::to_string(i), [&, i] {
      engine.advance_ns((i + 1) * 1000);  // arrivals at 1000/2000/3000
      barrier.arrive_and_wait();
      release_times[static_cast<size_t>(i)] = engine.now_ns();
    });
  }
  engine.run();
  for (int64_t t : release_times) EXPECT_EQ(t, 3000);
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Engine engine;
  Barrier barrier(engine, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    engine.spawn("p" + std::to_string(i), [&, i] {
      for (int r = 0; r < 5; ++r) {
        engine.advance_ns(static_cast<int64_t>(10 * (i + 1)));
        barrier.arrive_and_wait();
      }
      if (i == 0) rounds_done = 5;
    });
  }
  engine.run();
  EXPECT_EQ(rounds_done, 5);
}

TEST(Barrier, SingleParticipantNeverBlocks) {
  Engine engine;
  Barrier barrier(engine, 1);
  bool done = false;
  engine.spawn("solo", [&] {
    for (int i = 0; i < 3; ++i) barrier.arrive_and_wait();
    done = true;
  });
  engine.run();
  EXPECT_TRUE(done);
}

TEST(Barrier, RejectsNonPositiveParticipants) {
  Engine engine;
  EXPECT_THROW(Barrier(engine, 0), Error);
}

TEST(Semaphore, AcquireBlocksUntilRelease) {
  Engine engine;
  Semaphore sem(engine, 0);
  int64_t acquired_at = -1;
  engine.spawn("taker", [&] {
    sem.acquire();
    acquired_at = engine.now_ns();
  });
  engine.spawn("giver", [&] {
    engine.advance_ns(500);
    sem.release();
  });
  engine.run();
  EXPECT_EQ(acquired_at, 500);
}

TEST(Semaphore, CountingSemantics) {
  Engine engine;
  Semaphore sem(engine, 2);
  int concurrent = 0, max_concurrent = 0, completed = 0;
  for (int i = 0; i < 6; ++i) {
    engine.spawn("t" + std::to_string(i), [&] {
      sem.acquire();
      ++concurrent;
      max_concurrent = std::max(max_concurrent, concurrent);
      engine.sleep_for_ns(100);
      --concurrent;
      ++completed;
      sem.release();
    });
  }
  engine.run();
  EXPECT_EQ(completed, 6);
  EXPECT_LE(max_concurrent, 2);
}

TEST(Channel, ValuesArriveInFifoOrder) {
  Engine engine;
  Channel<int> ch(engine);
  std::vector<int> got;
  engine.spawn("consumer", [&] {
    for (int i = 0; i < 3; ++i) got.push_back(ch.pop());
  });
  engine.spawn("producer", [&] {
    for (int i = 1; i <= 3; ++i) {
      engine.advance_ns(10);
      ch.push(i * 11);
    }
  });
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{11, 22, 33}));
}

TEST(Channel, ConsumerWaitsForVisibilityTime) {
  Engine engine;
  Channel<std::string> ch(engine);
  int64_t got_at = -1;
  engine.spawn("consumer", [&] {
    (void)ch.pop();
    got_at = engine.now_ns();
  });
  // Delivery event from outside any fiber (models network delivery).
  engine.at(0, [&] { ch.push_at(2500, "payload"); });
  engine.run();
  EXPECT_EQ(got_at, 2500);
}

TEST(Channel, TryPopNonBlocking) {
  Engine engine;
  Channel<int> ch(engine);
  bool first_empty = false;
  int value = 0;
  engine.spawn("f", [&] {
    int v;
    first_empty = !ch.try_pop(&v);
    ch.push(7);
    if (ch.try_pop(&v)) value = v;
  });
  engine.run();
  EXPECT_TRUE(first_empty);
  EXPECT_EQ(value, 7);
}

TEST(Channel, ManyProducersOneConsumer) {
  Engine engine;
  Channel<int> ch(engine);
  int64_t sum = 0;
  engine.spawn("consumer", [&] {
    for (int i = 0; i < 30; ++i) sum += ch.pop();
  });
  for (int p = 0; p < 3; ++p) {
    engine.spawn("producer" + std::to_string(p), [&, p] {
      for (int i = 0; i < 10; ++i) {
        engine.advance_ns(7 * (p + 1));
        ch.push(p * 100 + i);
      }
    });
  }
  engine.run();
  int64_t expect = 0;
  for (int p = 0; p < 3; ++p)
    for (int i = 0; i < 10; ++i) expect += p * 100 + i;
  EXPECT_EQ(sum, expect);
}

}  // namespace
}  // namespace ppm::sim
