// Level-scheduled sparse triangular solve: schedule analysis, the serial
// reference, and PPM agreement across machine shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/cg/cg_ppm.hpp"
#include "apps/cg/cg_serial.hpp"
#include "apps/cg/csr.hpp"
#include "apps/cg/trisolve.hpp"

namespace ppm::apps::cg {
namespace {

const ChimneyProblem kProblem{.nx = 5, .ny = 5, .nz = 8};

TEST(TriSolve, LowerTriangleExtraction) {
  const CsrMatrix a = build_chimney_matrix(kProblem);
  const CsrMatrix l = lower_triangle(a);
  EXPECT_EQ(l.n, a.n);
  EXPECT_LT(l.nnz(), a.nnz());
  for (uint64_t i = 0; i < l.n; ++i) {
    bool has_diag = false;
    for (uint64_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
      EXPECT_LE(l.col_idx[k], i);
      has_diag |= (l.col_idx[k] == i);
    }
    EXPECT_TRUE(has_diag) << "row " << i;
  }
}

TEST(TriSolve, DependencyLevelsRespectStructure) {
  const CsrMatrix l = lower_triangle(build_chimney_matrix(kProblem));
  const auto levels = dependency_levels(l);
  // Every sub-diagonal dependency must come from a strictly lower level.
  for (uint64_t i = 0; i < l.n; ++i) {
    for (uint64_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
      const uint64_t j = l.col_idx[k];
      if (j < i) {
        EXPECT_LT(levels[j], levels[i]);
      }
    }
  }
  // Level scheduling must expose real parallelism: far fewer levels than
  // rows for a 3D stencil factor.
  const uint32_t max_level = *std::max_element(levels.begin(), levels.end());
  EXPECT_LT(max_level, l.n / 2);
  EXPECT_EQ(levels[0], 0u);
}

TEST(TriSolve, DependencyLevelsRejectUpperEntries) {
  CsrMatrix bad;
  bad.n = 2;
  bad.row_ptr = {0, 2, 3};
  bad.col_idx = {0, 1, 1};  // (0,1) above the diagonal
  bad.values = {1, 1, 1};
  EXPECT_THROW(dependency_levels(bad), Error);
}

TEST(TriSolve, SerialSolveSatisfiesSystem) {
  const CsrMatrix l = lower_triangle(build_chimney_matrix(kProblem));
  const auto b = build_chimney_rhs(kProblem);
  const auto y = trisolve_serial(l, b);
  // Verify L y = b.
  std::vector<double> ly(l.n, 0.0);
  for (uint64_t i = 0; i < l.n; ++i) {
    for (uint64_t k = l.row_ptr[i]; k < l.row_ptr[i + 1]; ++k) {
      ly[i] += l.values[k] * y[l.col_idx[k]];
    }
  }
  for (uint64_t i = 0; i < l.n; ++i) {
    EXPECT_NEAR(ly[i], b[i], 1e-9 * (1 + std::fabs(b[i]))) << "row " << i;
  }
}

TEST(TriSolve, SerialRejectsZeroDiagonal) {
  CsrMatrix l;
  l.n = 2;
  l.row_ptr = {0, 1, 3};
  l.col_idx = {0, 0, 1};
  l.values = {1.0, 2.0, 0.0};  // zero diagonal in row 1
  EXPECT_THROW(trisolve_serial(l, std::vector<double>{1, 1}), Error);
}

struct Shape {
  int nodes;
  int cores;
};

class DistributedTriSolve : public ::testing::TestWithParam<Shape> {};

TEST_P(DistributedTriSolve, PpmMatchesSerial) {
  const CsrMatrix l = lower_triangle(build_chimney_matrix(kProblem));
  const auto b = build_chimney_rhs(kProblem);
  const auto expect = trisolve_serial(l, b);

  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  std::vector<std::vector<double>> got;
  run(cfg, [&](Env& env) { got.push_back(trisolve_ppm(env, l, b)); });
  for (const auto& y : got) {
    ASSERT_EQ(y.size(), expect.size());
    for (uint64_t i = 0; i < expect.size(); ++i) {
      EXPECT_NEAR(y[i], expect[i], 1e-12 * (1 + std::fabs(expect[i])))
          << "row " << i;
    }
  }
}

TEST_P(DistributedTriSolve, UpperSerialSolveSatisfiesSystem) {
  const CsrMatrix u = upper_triangle(build_chimney_matrix(kProblem));
  const auto b = build_chimney_rhs(kProblem);
  const auto y = trisolve_upper_serial(u, b);
  std::vector<double> uy(u.n, 0.0);
  for (uint64_t i = 0; i < u.n; ++i) {
    for (uint64_t k = u.row_ptr[i]; k < u.row_ptr[i + 1]; ++k) {
      uy[i] += u.values[k] * y[u.col_idx[k]];
    }
  }
  for (uint64_t i = 0; i < u.n; ++i) {
    EXPECT_NEAR(uy[i], b[i], 1e-9 * (1 + std::fabs(b[i])));
  }
}

TEST_P(DistributedTriSolve, SsorPcgConvergesFasterThanPlainCg) {
  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  const CgOptions opts{.max_iterations = 200, .tolerance = 1e-8};
  int plain_iters = 0, pcg_iters = 0;
  bool plain_ok = false, pcg_ok = false;
  run(cfg, [&](Env& env) {
    auto plain = cg_solve_ppm(env, kProblem, opts);
    auto pcg = cg_solve_ppm_ssor(env, kProblem, opts);
    if (env.node_id() == 0) {
      plain_iters = plain.iterations;
      pcg_iters = pcg.iterations;
      plain_ok = plain.converged;
      pcg_ok = pcg.converged;
    }
  });
  EXPECT_TRUE(plain_ok);
  EXPECT_TRUE(pcg_ok);
  EXPECT_LT(pcg_iters, plain_iters)
      << "SSOR preconditioning should reduce the iteration count";
}

TEST_P(DistributedTriSolve, SsorPcgSolutionMatchesSerialCg) {
  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  const CgOptions opts{.max_iterations = 300, .tolerance = 1e-10};
  const auto serial =
      cg_solve_serial(build_chimney_matrix(kProblem),
                      build_chimney_rhs(kProblem), opts);
  std::vector<double> x_local;
  uint64_t base = 0;
  run(cfg, [&](Env& env) {
    auto out = cg_solve_ppm_ssor(env, kProblem, opts);
    if (env.node_id() == 0) {
      base = out.x.local_begin();
      for (uint64_t i = out.x.local_begin(); i < out.x.local_end(); ++i) {
        x_local.push_back(out.x.get(i));
      }
    }
  });
  for (size_t i = 0; i < x_local.size(); ++i) {
    EXPECT_NEAR(x_local[i], serial.x[base + i], 1e-7)
        << "x[" << base + i << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributedTriSolve,
    ::testing::Values(Shape{1, 1}, Shape{1, 4}, Shape{2, 2}, Shape{3, 1},
                      Shape{4, 2}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores);
    });

}  // namespace
}  // namespace ppm::apps::cg
