#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace ppm {
namespace {

TEST(SplitMix64, DeterministicFromSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 0 from the published splitmix64 algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.next_below(5);
    ASSERT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextBelowZeroBound) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.next_in(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(23);
  Rng a = parent.split();
  Rng b = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Mix64, AvalanchesSingleBit) {
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t h0 = mix64(0x12345678);
  const uint64_t h1 = mix64(0x12345679);
  const int flipped = __builtin_popcountll(h0 ^ h1);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

}  // namespace
}  // namespace ppm
