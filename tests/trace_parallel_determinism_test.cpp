// ppm::trace x parallel DES interplay: the conservative-window engine's
// contract is that a run is a bit-identical replay of itself at any
// host-thread count — including everything the tracer sees. A traced
// modeled CG run must produce byte-identical trace::Summary::to_string()
// and Chrome trace-event JSON across sim_threads 1/2/4, not just
// identical committed results.
#include <gtest/gtest.h>

#include <string>

#include "apps/cg/cg_ppm.hpp"
#include "core/ppm.hpp"
#include "trace/export.hpp"

namespace ppm {
namespace {

struct TracedCg {
  int64_t duration_ns = 0;
  std::string summary;      // trace::Summary::to_string()
  std::string chrome_json;  // Perfetto-loadable export
};

TracedCg traced_cg(int sim_threads) {
  PpmConfig cfg;
  cfg.machine.nodes = 4;
  cfg.machine.cores_per_node = 4;
  cfg.machine.sim_threads = sim_threads;
  // Modeled-only virtual time: timestamps are a pure function of the
  // cost model, so byte-identity is the expectation, not a coincidence.
  cfg.machine.engine.calibration = sim::CalibrationMode::kModeledOnly;
  cfg.runtime.trace = true;

  const apps::cg::ChimneyProblem problem{.nx = 12, .ny = 12, .nz = 24};
  const apps::cg::CgOptions opts{.max_iterations = 6, .tolerance = 1e-10};

  cluster::Machine machine(cfg.machine);
  Runtime runtime(machine, cfg.runtime);
  machine.run_per_node([&](int node) {
    NodeRuntime& nr = runtime.node(node);
    nr.start();
    Env env(nr);
    apps::cg::cg_solve_ppm(env, problem, opts);
    nr.finish();
  });
  TracedCg out;
  const RunResult r = runtime.collect();
  out.duration_ns = r.duration_ns;
  out.summary = r.trace_summary.to_string();
  out.chrome_json = trace::to_chrome_json(*runtime.trace());
  return out;
}

TEST(TraceParallelDeterminism, ByteIdenticalAcrossSimThreads) {
  const TracedCg one = traced_cg(1);
  ASSERT_GT(one.duration_ns, 0);
  ASSERT_FALSE(one.summary.empty());
  ASSERT_NE(one.chrome_json.find("traceEvents"), std::string::npos);

  const TracedCg two = traced_cg(2);
  const TracedCg four = traced_cg(4);
  EXPECT_EQ(one.duration_ns, two.duration_ns);
  EXPECT_EQ(one.duration_ns, four.duration_ns);
  EXPECT_EQ(one.summary, two.summary);
  EXPECT_EQ(one.summary, four.summary);
  EXPECT_EQ(one.chrome_json, two.chrome_json);
  EXPECT_EQ(one.chrome_json, four.chrome_json);
}

}  // namespace
}  // namespace ppm
