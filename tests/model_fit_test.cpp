// ppm::model unit coverage (docs/OBSERVABILITY.md): PMNF shape recovery
// on synthetic counter curves of known form, analytic term drivers,
// composition fits on synthetic runs with known ground truth, counter
// clamping on extrapolation, Observation extraction, and determinism —
// all pure functions, no simulator runs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/model.hpp"
#include "util/error.hpp"

namespace ppm::model {
namespace {

std::vector<double> node_counts() { return {2, 3, 4, 5, 6, 7, 8}; }

TEST(FitShape, RecoversLinear) {
  std::vector<double> ns = node_counts(), ys;
  for (double n : ns) ys.push_back(100.0 + 7.0 * n);
  const Shape s = fit_shape(ns, ys);
  EXPECT_DOUBLE_EQ(s.exponent, 1.0);
  EXPECT_EQ(s.log_power, 0);
  EXPECT_NEAR(s.a, 100.0, 1e-6);
  EXPECT_NEAR(s.b, 7.0, 1e-8);
  for (double n : {12.0, 16.0, 512.0}) {
    EXPECT_NEAR(s.eval(n), 100.0 + 7.0 * n, 1e-5);
  }
}

TEST(FitShape, RecoversConstant) {
  std::vector<double> ns = node_counts(), ys(ns.size(), 42.0);
  const Shape s = fit_shape(ns, ys);
  EXPECT_DOUBLE_EQ(s.exponent, 0.0);
  EXPECT_EQ(s.log_power, 0);
  EXPECT_NEAR(s.eval(9660.0), 42.0, 1e-9);
}

TEST(FitShape, RecoversNLogN) {
  std::vector<double> ns = node_counts(), ys;
  for (double n : ns) ys.push_back(3.0 + 5.0 * n * std::log2(n));
  const Shape s = fit_shape(ns, ys);
  EXPECT_DOUBLE_EQ(s.exponent, 1.0);
  EXPECT_EQ(s.log_power, 1);
  EXPECT_NEAR(s.eval(16.0), 3.0 + 5.0 * 16.0 * 4.0, 1e-4);
}

TEST(FitShape, RecoversInverse) {
  std::vector<double> ns = node_counts(), ys;
  for (double n : ns) ys.push_back(50.0 + 1000.0 / n);
  const Shape s = fit_shape(ns, ys);
  EXPECT_DOUBLE_EQ(s.exponent, -1.0);
  EXPECT_EQ(s.log_power, 0);
  EXPECT_NEAR(s.eval(16.0), 50.0 + 1000.0 / 16.0, 1e-4);
}

TEST(FitShape, TooFewPointsFallBackToMean) {
  const std::vector<double> ns = {2, 4};
  const std::vector<double> ys = {10.0, 30.0};
  const Shape s = fit_shape(ns, ys);
  EXPECT_DOUBLE_EQ(s.exponent, 0.0);
  EXPECT_EQ(s.log_power, 0);
  EXPECT_DOUBLE_EQ(s.eval(8.0), 20.0);
}

TEST(FitShape, FormulaRoundTrips) {
  std::vector<double> ns = node_counts(), ys;
  for (double n : ns) ys.push_back(2.0 * n);
  const Shape s = fit_shape(ns, ys);
  EXPECT_NE(s.formula().find("N^1.00"), std::string::npos) << s.formula();
}

TEST(TermDrivers, MatchAnalyticCosts) {
  const MachineCosts c;  // 5000 ns latency, 2 B/ns, 500+500 ns overheads
  const std::vector<double> d =
      term_drivers(c, /*nodes=*/8.0, /*compute=*/1e6, /*messages=*/800.0,
                   /*bytes=*/64000.0, /*fetches=*/160.0, /*stall=*/8000.0,
                   /*global_phases=*/10.0);
  ASSERT_EQ(d.size(), kTerms);
  EXPECT_DOUBLE_EQ(d[0], 1e6);                            // compute
  EXPECT_DOUBLE_EQ(d[1], 20.0 * (2 * 5000 + 2 * 1000));   // fetch_rt
  EXPECT_DOUBLE_EQ(d[2], 8000.0 / 2.0);                   // wire
  EXPECT_DOUBLE_EQ(d[3], 100.0 * 1000.0);                 // msg_sw
  EXPECT_DOUBLE_EQ(d[4], 1000.0);                         // stall_node
  EXPECT_DOUBLE_EQ(d[5], 10.0 * 3 * 6000.0);              // barrier, log2(8)=3
}

TEST(TermDrivers, BarrierDepthIsCeilLog2) {
  const MachineCosts c;
  const double per_round = c.latency_ns + c.send_overhead_ns +
                           c.recv_overhead_ns;
  // Non-power-of-two node counts round the dissemination depth up.
  const auto depth = [&](double n) {
    return term_drivers(c, n, 0, 0, 0, 0, 0, 1.0)[5] / per_round;
  };
  EXPECT_DOUBLE_EQ(depth(2), 1.0);
  EXPECT_DOUBLE_EQ(depth(12), 4.0);
  EXPECT_DOUBLE_EQ(depth(9660), 14.0);
}

/// Synthetic observations whose vtime is an exact known combination of
/// the analytic terms, with counters following exact PMNF shapes.
std::vector<Observation> synthetic_runs(const MachineCosts& costs,
                                        const double (&coeff)[kTerms]) {
  std::vector<Observation> obs;
  for (double n : node_counts()) {
    Observation o;
    o.nodes = static_cast<int>(n);
    o.cores = 4;
    o.compute_critical_ns = static_cast<int64_t>(2e6 / n + 5e4);
    o.messages = static_cast<uint64_t>(100.0 * n * n);
    o.bytes = static_cast<uint64_t>(30000.0 * n * std::log2(n) + 8000.0);
    o.fetches = static_cast<uint64_t>(50.0 * n);
    o.stall_ns = static_cast<uint64_t>(40000.0 * n);
    o.global_phases = 24;
    const std::vector<double> d = term_drivers(
        costs, n, static_cast<double>(o.compute_critical_ns),
        static_cast<double>(o.messages), static_cast<double>(o.bytes),
        static_cast<double>(o.fetches), static_cast<double>(o.stall_ns),
        static_cast<double>(o.global_phases));
    double v = 0;
    for (size_t i = 0; i < kTerms; ++i) v += coeff[i] * d[i];
    o.vtime_ns = static_cast<int64_t>(v);
    obs.push_back(o);
  }
  return obs;
}

TEST(Fit, TightResidualsAndAccurateExtrapolationOnSyntheticRuns) {
  const MachineCosts costs;
  const double truth[kTerms] = {1.0, 0.9, 1.1, 1.0, 0.5, 1.2};
  const std::vector<Observation> obs = synthetic_runs(costs, truth);
  const Model m = fit(obs, costs);
  ASSERT_EQ(m.terms.size(), kTerms);
  ASSERT_EQ(m.fit_rel_err.size(), obs.size());
  for (double e : m.fit_rel_err) EXPECT_LT(std::abs(e), 0.02) << e;
  for (const CostTerm& t : m.terms) EXPECT_GE(t.coefficient, 0.0) << t.name;
  // Held-out ground truth at 12 and 16 nodes, built the same way.
  for (double n : {12.0, 16.0}) {
    const std::vector<double> d = term_drivers(
        costs, n, 2e6 / n + 5e4, 100.0 * n * n,
        30000.0 * n * std::log2(n) + 8000.0, 50.0 * n, 40000.0 * n, 24.0);
    double want = 0;
    for (size_t i = 0; i < kTerms; ++i) want += truth[i] * d[i];
    const Prediction p = m.predict(static_cast<int>(n));
    EXPECT_NEAR(p.vtime_ns / want, 1.0, 0.05) << "N=" << n;
    ASSERT_EQ(p.term_ns.size(), kTerms);
    double sum = 0;
    for (double t : p.term_ns) sum += t;
    EXPECT_NEAR(sum, p.vtime_ns, 1e-6);  // breakdown adds up
  }
}

TEST(Fit, IsDeterministic) {
  const MachineCosts costs;
  const double truth[kTerms] = {1.0, 1.0, 1.0, 1.0, 0.5, 1.0};
  const std::vector<Observation> obs = synthetic_runs(costs, truth);
  const Model a = fit(obs, costs);
  const Model b = fit(obs, costs);
  EXPECT_EQ(a.to_string(), b.to_string());
  for (size_t i = 0; i < kTerms; ++i) {
    EXPECT_EQ(a.terms[i].coefficient, b.terms[i].coefficient);
  }
  EXPECT_EQ(a.predict(9660).vtime_ns, b.predict(9660).vtime_ns);
}

TEST(Fit, RejectsTooFewObservations) {
  const MachineCosts costs;
  std::vector<Observation> obs(2);
  obs[0].nodes = 2;
  obs[1].nodes = 4;
  EXPECT_THROW(fit(obs, costs), Error);
}

TEST(Predict, ClampsExtrapolatedCountersToZero) {
  Model m;
  m.cores = 4;
  m.fit_nodes = {2, 4, 8};
  for (size_t i = 0; i < kCounters; ++i) {
    // Negative slope: eval() goes below zero past N=10.
    m.counters[i] = Shape{.a = 100.0, .b = -10.0, .exponent = 1.0,
                          .log_power = 0};
  }
  m.terms.resize(kTerms);
  for (size_t i = 0; i < kTerms; ++i) {
    m.terms[i] = {kTermNames[i], 1.0, 1.0};
  }
  const Prediction p = m.predict(64);
  EXPECT_DOUBLE_EQ(p.messages, 0.0);
  EXPECT_DOUBLE_EQ(p.bytes, 0.0);
  EXPECT_DOUBLE_EQ(p.fetches, 0.0);
  EXPECT_DOUBLE_EQ(p.vtime_ns, 0.0);
}

TEST(Observe, ExtractsCountersFromRunResult) {
  RunResult r;
  r.duration_ns = 123456;
  r.network_messages = 640;
  r.network_bytes = 51200;
  r.remote_blocks_fetched = 80;
  r.fetch_stall_ns = 9000;
  r.global_phases = 96;  // summed over 4 nodes -> 24 per node
  r.node_phases = 8;
  r.accums_executed = 16;
  r.reduction_bytes_saved = 192;
  r.trace_summary.events = 1000;
  trace::PhaseCritical p1;
  p1.compute_max_ns = 700;
  p1.commit_max_ns = 300;
  trace::PhaseCritical p2;
  p2.compute_max_ns = 1300;
  p2.commit_max_ns = 200;
  r.trace_summary.phases = {p1, p2};
  const Observation o = observe(4, 4, r);
  EXPECT_EQ(o.nodes, 4);
  EXPECT_EQ(o.vtime_ns, 123456);
  EXPECT_EQ(o.messages, 640u);
  EXPECT_EQ(o.global_phases, 24u);
  EXPECT_EQ(o.compute_critical_ns, 2000);
  EXPECT_EQ(o.commit_critical_ns, 500);
  EXPECT_EQ(o.accums_executed, 16u);
  EXPECT_EQ(o.reduction_bytes_saved, 192u);
}

TEST(Observe, RequiresTracedRun) {
  RunResult r;
  r.duration_ns = 1;
  EXPECT_THROW(observe(4, 4, r), Error);
}

}  // namespace
}  // namespace ppm::model
