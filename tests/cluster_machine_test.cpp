#include "cluster/machine.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/error.hpp"

namespace ppm::cluster {
namespace {

TEST(Machine, LaunchesOneFiberPerCore) {
  Machine machine({.nodes = 3, .cores_per_node = 4});
  std::set<std::pair<int, int>> seen;
  machine.run_per_core([&](const Place& p) { seen.insert({p.node, p.core}); });
  EXPECT_EQ(seen.size(), 12u);
  EXPECT_TRUE(seen.count({2, 3}));
  EXPECT_TRUE(seen.count({0, 0}));
}

TEST(Machine, LaunchesOneFiberPerNode) {
  Machine machine({.nodes = 5, .cores_per_node = 2});
  std::set<int> seen;
  machine.run_per_node([&](int node) { seen.insert(node); });
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Machine, RunDurationIsMaxOverFibers) {
  Machine machine({.nodes = 2, .cores_per_node = 2});
  machine.run_per_core([&](const Place& p) {
    machine.engine().advance_ns(1000 * (p.node * 2 + p.core + 1));
  });
  EXPECT_EQ(machine.last_run_duration_ns(), 4000);
}

TEST(Machine, CoresShareTheNodeFabricEndpointSpace) {
  Machine machine({.nodes = 2, .cores_per_node = 2});
  int64_t got = 0;
  machine.run_per_core([&](const Place& p) {
    if (p.node == 0 && p.core == 1) {
      net::Message m;
      m.src_node = 0;
      m.src_port = 1;
      m.dst_node = 1;
      m.dst_port = 0;
      ByteWriter w;
      w.put<int64_t>(77);
      m.payload = std::move(w).take();
      machine.fabric().send(std::move(m));
    } else if (p.node == 1 && p.core == 0) {
      net::Message m = machine.fabric().endpoint(1, 0).recv();
      ByteReader r(m.payload);
      got = r.get<int64_t>();
    }
  });
  EXPECT_EQ(got, 77);
}

TEST(Machine, ServicePortIsReservedBeyondCores) {
  Machine machine({.nodes = 1, .cores_per_node = 3});
  EXPECT_EQ(machine.service_port(), 3);
  // The service endpoint exists.
  machine.fabric().endpoint(0, machine.service_port());
  // Beyond it: invalid.
  EXPECT_THROW(machine.fabric().endpoint(0, machine.service_port() + 1),
               Error);
}

TEST(Machine, RejectsDegenerateShapes) {
  EXPECT_THROW(Machine({.nodes = 0, .cores_per_node = 1}), Error);
  EXPECT_THROW(Machine({.nodes = 1, .cores_per_node = 0}), Error);
}

TEST(Machine, SpawnAtAddsFiberDuringRun) {
  Machine machine({.nodes = 1, .cores_per_node = 2});
  bool helper_ran = false;
  machine.run_per_node([&](int node) {
    machine.spawn_at({node, 1}, "helper", [&] { helper_ran = true; });
  });
  EXPECT_TRUE(helper_ran);
}

TEST(Machine, SequentialRunsAccumulateIndependentDurations) {
  Machine machine({.nodes = 1, .cores_per_node = 1});
  machine.run_per_node([&](int) { machine.engine().advance_ns(500); });
  EXPECT_EQ(machine.last_run_duration_ns(), 500);
  machine.run_per_node([&](int) { machine.engine().advance_ns(200); });
  EXPECT_EQ(machine.last_run_duration_ns(), 200);
}

TEST(Machine, ProgramErrorPropagates) {
  Machine machine({.nodes = 2, .cores_per_node = 1});
  EXPECT_THROW(machine.run_per_node([&](int node) {
    if (node == 1) throw Error("app failure");
    // Node 0 must not hang the harness: it finishes normally.
  }),
               Error);
}

}  // namespace
}  // namespace ppm::cluster
