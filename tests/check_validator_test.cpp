// ppm::check — the phase-semantics sanitizer (docs/validator.md).
//
// One test per detection class proves a seeded violation is found and
// named (array/element/phase); the clean-program tests prove the model's
// legal idioms do NOT trip it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

PpmConfig checked_cfg(int nodes, int cores) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = cores;
  c.runtime.validate_phases = true;
  return c;
}

// ---- Class (a): write-write set() conflicts ------------------------------

TEST(CheckValidator, SetSetConflictDetected) {
  // Every VP plain-sets element 0: the runtime silently resolves to the
  // highest rank — exactly the masked nondeterminism the checker exists
  // to surface.
  const RunResult r = run(checked_cfg(2, 2), [](Env& env) {
    auto a = env.global_array<int64_t>(8);
    auto vps = env.ppm_do(4);
    vps.global_phase([&](Vp& vp) {
      a.set(0, static_cast<int64_t>(vp.global_rank()));
    });
  });
  EXPECT_FALSE(r.check_report.clean());
  EXPECT_GE(r.check_report.set_set_conflicts, 1u);
  EXPECT_EQ(r.check_report.mixed_op_conflicts, 0u);
  EXPECT_EQ(r.check_report.lockstep_mismatches, 0u);
  ASSERT_FALSE(r.check_report.violations.empty());
  const check::Violation& v = r.check_report.violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kSetSetConflict);
  EXPECT_EQ(v.severity, check::Severity::kError);
  EXPECT_EQ(v.array_id, 0u);
  EXPECT_EQ(v.element, 0u);
  EXPECT_EQ(v.phase, 0u);  // first global phase
  EXPECT_TRUE(v.global_phase);
  EXPECT_NE(v.vp_a, v.vp_b);  // two distinct offending VP ranks
  EXPECT_EQ(r.check_report.conflicts_by_array.at(0u), 1u);
}

TEST(CheckValidator, RemoteSetConflictDetectedAtOwner) {
  // Both writers live on node 0 but the element is owned by node 1: the
  // conflict must be caught where local log and remote bundles converge.
  const uint64_t n = 16;  // block distribution: node 1 owns [8, 16)
  const RunResult r = run(checked_cfg(2, 2), [&](Env& env) {
    auto a = env.global_array<int64_t>(n);
    auto vps = env.ppm_do(env.node_id() == 0 ? 4 : 0);
    vps.global_phase([&](Vp& vp) {
      a.set(12, static_cast<int64_t>(vp.global_rank()));
    });
  });
  EXPECT_GE(r.check_report.set_set_conflicts, 1u);
  ASSERT_FALSE(r.check_report.violations.empty());
  const check::Violation& v = r.check_report.violations.front();
  EXPECT_EQ(v.node, 1);  // detected by the owner
  EXPECT_EQ(v.element, 12u);
}

TEST(CheckValidator, SameVpRepeatedSetIsClean) {
  // One VP overwriting its own element is ordinary program order.
  const RunResult r = run(checked_cfg(2, 2), [](Env& env) {
    auto a = env.global_array<int64_t>(8);
    auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    vps.global_phase([&](Vp&) {
      a.set(0, 1);
      a.set(0, 2);
      a.set(0, 3);
    });
  });
  EXPECT_TRUE(r.check_report.clean());
  EXPECT_TRUE(r.check_report.violations.empty());
}

// ---- Class (b): mixed / non-commuting op conflicts -----------------------

TEST(CheckValidator, MixedAccumulateOpsDetected) {
  // add() and min_update() on one element from different VPs: the result
  // depends on commit order, not program intent.
  const RunResult r = run(checked_cfg(1, 2), [](Env& env) {
    auto a = env.global_array<int64_t>(4);
    auto vps = env.ppm_do(2);
    vps.global_phase([&](Vp& vp) {
      if (vp.global_rank() == 0) {
        a.add(1, 10);
      } else {
        a.min_update(1, -5);
      }
    });
  });
  EXPECT_FALSE(r.check_report.clean());
  EXPECT_GE(r.check_report.mixed_op_conflicts, 1u);
  EXPECT_EQ(r.check_report.set_set_conflicts, 0u);
  ASSERT_FALSE(r.check_report.violations.empty());
  const check::Violation& v = r.check_report.violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kMixedOpConflict);
  EXPECT_EQ(v.array_id, 0u);
  EXPECT_EQ(v.element, 1u);
  EXPECT_NE(v.detail.find("add"), std::string::npos);
  EXPECT_NE(v.detail.find("min"), std::string::npos);
}

TEST(CheckValidator, SetPlusAccumulateDetected) {
  const RunResult r = run(checked_cfg(1, 2), [](Env& env) {
    auto a = env.global_array<int64_t>(4);
    auto vps = env.ppm_do(2);
    vps.global_phase([&](Vp& vp) {
      if (vp.global_rank() == 0) {
        a.set(2, 100);
      } else {
        a.add(2, 1);
      }
    });
  });
  EXPECT_GE(r.check_report.mixed_op_conflicts, 1u);
  ASSERT_FALSE(r.check_report.violations.empty());
  EXPECT_EQ(r.check_report.violations.front().element, 2u);
}

TEST(CheckValidator, SameVpMixedOpsAreClean) {
  // set-then-add by ONE VP is well-defined program order, not a race.
  const RunResult r = run(checked_cfg(1, 2), [](Env& env) {
    auto a = env.global_array<int64_t>(4);
    auto vps = env.ppm_do(1);
    vps.global_phase([&](Vp&) {
      a.set(0, 100);
      a.add(0, 1);
      a.min_update(0, 50);
    });
  });
  EXPECT_TRUE(r.check_report.clean());
}

// ---- Class (c): cross-node lockstep violations ---------------------------

TEST(CheckValidator, ArrayCreationOrderMismatchDetected) {
  // The SPMD contract: every node allocates the same arrays in the same
  // order. Here node 0 swaps the two allocations — without the checker
  // this "works" until the first cross-node access scrambles data.
  const RunResult r = run(checked_cfg(2, 1), [](Env& env) {
    if (env.node_id() == 0) {
      (void)env.global_array<double>(64);
      (void)env.global_array<double>(32);
    } else {
      (void)env.global_array<double>(32);
      (void)env.global_array<double>(64);
    }
    auto vps = env.ppm_do(1);
    vps.global_phase([](Vp&) {});  // fingerprints exchange at this commit
  });
  EXPECT_FALSE(r.check_report.clean());
  EXPECT_GE(r.check_report.lockstep_mismatches, 1u);
  ASSERT_FALSE(r.check_report.violations.empty());
  const check::Violation& v = r.check_report.violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kLockstepMismatch);
  EXPECT_TRUE(v.global_phase);
  EXPECT_NE(v.detail.find("lockstep"), std::string::npos);
}

TEST(CheckValidator, ArrayCountMismatchNamesCounts) {
  const RunResult r = run(checked_cfg(2, 1), [](Env& env) {
    (void)env.global_array<double>(64);
    if (env.node_id() == 1) (void)env.node_array<double>(8);  // extra
    auto vps = env.ppm_do(1);
    vps.global_phase([](Vp&) {});
  });
  EXPECT_GE(r.check_report.lockstep_mismatches, 1u);
  ASSERT_FALSE(r.check_report.violations.empty());
  EXPECT_NE(r.check_report.violations.front().detail.find("array"),
            std::string::npos);
}

// ---- Class (d): array shape hazards --------------------------------------

TEST(CheckValidator, ZeroLengthArrayRejected) {
  EXPECT_THROW(run(checked_cfg(1, 1),
                   [](Env& env) { (void)env.global_array<double>(0); }),
               Error);
  // Also rejected without the validator: it is a hard contract.
  PpmConfig plain;
  plain.machine.nodes = 1;
  plain.machine.cores_per_node = 1;
  EXPECT_THROW(
      run(plain, [](Env& env) { (void)env.node_array<int64_t>(0); }), Error);
}

TEST(CheckValidator, UndersizedGlobalArrayIsAWarningNotAnError) {
  const RunResult r = run(checked_cfg(4, 1), [](Env& env) {
    auto a = env.global_array<double>(2);  // 2 elements on 4 nodes
    auto vps = env.ppm_do(1);
    vps.global_phase([&](Vp& vp) {
      if (vp.global_rank() == 0) a.set(0, 1.0);
    });
  });
  EXPECT_TRUE(r.check_report.clean());  // warnings don't fail a run
  EXPECT_TRUE(r.check_report.has_warnings());
  EXPECT_GE(r.check_report.shape_hazards, 1u);
  ASSERT_FALSE(r.check_report.violations.empty());
  const check::Violation& v = r.check_report.violations.front();
  EXPECT_EQ(v.kind, check::ViolationKind::kShapeHazard);
  EXPECT_EQ(v.severity, check::Severity::kWarning);
  EXPECT_EQ(v.array_id, 0u);
}

// ---- Clean programs stay clean -------------------------------------------

TEST(CheckValidator, RepresentativePhaseIdiomsRunClean) {
  // The model's legal idioms: per-rank disjoint sets, commutative
  // accumulates (histogram), min/max relaxations, node phases, stencil
  // reads, gathers. None of it may trip the sanitizer.
  const RunResult r = run(checked_cfg(3, 3), [](Env& env) {
    const uint64_t n = 96;
    auto x = env.global_array<double>(n);
    auto hist = env.global_array<int64_t>(8);
    auto dist = env.global_array<int64_t>(n);
    const uint64_t k = n / static_cast<uint64_t>(env.node_count());
    auto scratch = env.node_array<double>(k);
    auto vps = env.ppm_do(k);
    vps.global_phase([&](Vp& vp) {
      x.set(vp.global_rank(), static_cast<double>(vp.global_rank()));
      dist.set(vp.global_rank(), 1 << 30);
    });
    for (int iter = 0; iter < 3; ++iter) {
      vps.global_phase([&](Vp& vp) {
        const uint64_t i = vp.global_rank();
        const double left = x.get((i + n - 1) % n);
        const double right = x.get((i + 1) % n);
        x.set(i, 0.5 * (left + right));      // disjoint per-rank sets
        hist.add(i % 8, 1);                  // commutative conflicts: fine
        dist.min_update(i, static_cast<int64_t>(i % 7));  // same-op: fine
      });
    }
    vps.node_phase([&](Vp& vp) {
      scratch.set(vp.node_rank(), static_cast<double>(vp.node_rank()));
    });
    vps.global_phase([&](Vp& vp) {
      const std::vector<uint64_t> idx = {0, n / 2, n - 1};
      (void)x.gather(idx);
      (void)vp;
    });
  });
  EXPECT_TRUE(r.check_report.clean());
  EXPECT_FALSE(r.check_report.has_warnings());
  EXPECT_TRUE(r.check_report.violations.empty());
  EXPECT_GT(r.check_report.phases_checked, 0u);
  EXPECT_GT(r.check_report.commit_entries_scanned, 0u);
  EXPECT_GT(r.check_report.writes_observed, 0u);
  EXPECT_GT(r.check_report.reads_observed, 0u);
}

TEST(CheckValidator, DistinctElementSetsAreClean) {
  // The commutative-single-op fast path in the commit must not be
  // confused with a conflict, and per-element disjoint sets never flag.
  const RunResult r = run(checked_cfg(2, 4), [](Env& env) {
    auto a = env.global_array<int64_t>(64);
    auto vps = env.ppm_do(32);
    vps.global_phase([&](Vp& vp) {
      a.set(vp.global_rank(), static_cast<int64_t>(vp.global_rank()));
    });
  });
  EXPECT_TRUE(r.check_report.clean());
}

// ---- Runtime plumbing ----------------------------------------------------

TEST(CheckValidator, OffByDefaultAndReportEmpty) {
  PpmConfig cfg;
  cfg.machine.nodes = 2;
  cfg.machine.cores_per_node = 2;
  bool enabled = true;
  const RunResult r = run(cfg, [&](Env& env) {
    enabled = env.validation_enabled();
    auto a = env.global_array<int64_t>(4);
    auto vps = env.ppm_do(4);
    vps.global_phase([&](Vp& vp) {
      a.set(0, static_cast<int64_t>(vp.global_rank()));  // racy, unchecked
    });
  });
  EXPECT_FALSE(enabled);
  EXPECT_TRUE(r.check_report.clean());
  EXPECT_EQ(r.check_report.phases_checked, 0u);
  EXPECT_EQ(r.check_report.writes_observed, 0u);
}

TEST(CheckValidator, NodeReportVisibleMidRun) {
  uint64_t seen_mid_run = 0;
  const RunResult r = run(checked_cfg(1, 2), [&](Env& env) {
    auto a = env.global_array<int64_t>(4);
    auto vps = env.ppm_do(2);
    vps.global_phase([&](Vp& vp) {
      a.set(3, static_cast<int64_t>(vp.global_rank()));
    });
    seen_mid_run = env.node_check_report().set_set_conflicts;
  });
  EXPECT_EQ(seen_mid_run, 1u);
  EXPECT_EQ(r.check_report.set_set_conflicts, 1u);
}

TEST(CheckValidator, FailFastThrowsAtTheOffendingCommit) {
  PpmConfig cfg = checked_cfg(1, 2);
  cfg.runtime.validate_fail_fast = true;
  EXPECT_THROW(run(cfg,
                   [](Env& env) {
                     auto a = env.global_array<int64_t>(4);
                     auto vps = env.ppm_do(2);
                     vps.global_phase([&](Vp& vp) {
                       a.set(0, static_cast<int64_t>(vp.global_rank()));
                     });
                   }),
               Error);
}

TEST(CheckValidator, ReportDumpIsHumanReadable) {
  const RunResult r = run(checked_cfg(1, 2), [](Env& env) {
    auto a = env.global_array<int64_t>(4);
    auto vps = env.ppm_do(2);
    vps.global_phase([&](Vp& vp) {
      a.set(0, static_cast<int64_t>(vp.global_rank()));
    });
  });
  const std::string dump = r.check_report.to_string();
  EXPECT_NE(dump.find("set-set conflict"), std::string::npos);
  EXPECT_NE(dump.find("error"), std::string::npos);
  EXPECT_NE(dump.find("array 0 element 0"), std::string::npos);
}

}  // namespace
}  // namespace ppm
