// ppm::jobs scheduler: degenerate launches, admission backpressure,
// replay determinism, policy behavior, drain/preempt, and contention
// attribution (docs/SCHEDULER.md).
#include <gtest/gtest.h>

#include "jobs/jobs.hpp"

namespace ppm::jobs {
namespace {

JobsConfig base_config() {
  JobsConfig cfg;
  cfg.machine.nodes = 4;
  cfg.machine.cores_per_node = 2;
  cfg.machine.engine.calibration = sim::CalibrationMode::kModeledOnly;
  return cfg;
}

JobSpec job(uint64_t id, JobKind kind, int nodes, uint64_t size,
            uint64_t steps, int64_t arrival_ns) {
  JobSpec s;
  s.id = id;
  s.kind = kind;
  s.nodes_required = nodes;
  s.size = size;
  s.steps = steps;
  s.seed = 7 + id;
  s.arrival_ns = arrival_ns;
  return s;
}

TEST(JobsScheduler, EmptyStreamCompletesCleanly) {
  JobsConfig cfg = base_config();
  cfg.job_count = 0;
  const JobsResult res = run_jobs(cfg);
  EXPECT_TRUE(res.jobs.empty());
  EXPECT_EQ(res.completed_jobs, 0);
  EXPECT_EQ(res.makespan_ns, 0);
  EXPECT_EQ(res.throughput_jobs_per_s, 0.0);
}

TEST(JobsScheduler, SingleOneNodeJob) {
  JobsConfig cfg = base_config();
  cfg.jobs = {job(0, JobKind::kCg, 1, 128, 2, 1000)};
  const JobsResult res = run_jobs(cfg);
  ASSERT_EQ(res.jobs.size(), 1u);
  EXPECT_EQ(res.completed_jobs, 1);
  EXPECT_EQ(res.rejected_jobs, 0);
  const JobStats& st = res.jobs[0];
  EXPECT_EQ(st.start_ns, 1000);  // idle machine: launched at arrival
  EXPECT_GT(st.finish_ns, st.start_ns);
  EXPECT_EQ(st.machine_nodes, std::vector<int>{0});
  EXPECT_EQ(st.state_digest, run_job_isolated(st.spec, cfg));
}

TEST(JobsScheduler, OversizedJobRejectedNotHung) {
  // A gang wider than the machine must be rejected at admission — under
  // FIFO it would otherwise block the head of the queue forever.
  JobsConfig cfg = base_config();
  cfg.jobs = {job(0, JobKind::kMatgen, cfg.machine.nodes + 1, 128, 2, 0),
              job(1, JobKind::kCg, 2, 128, 2, 100)};
  const JobsResult res = run_jobs(cfg);
  EXPECT_EQ(res.rejected_jobs, 1);
  EXPECT_EQ(res.completed_jobs, 1);
  EXPECT_TRUE(res.jobs[0].rejected);
  EXPECT_EQ(res.jobs[0].finish_ns, 0);
  EXPECT_FALSE(res.jobs[1].rejected);
  ASSERT_EQ(res.completion_order.size(), 1u);
  EXPECT_EQ(res.completion_order[0], 1u);
}

TEST(JobsScheduler, BackpressureAccountedWhenQueueFull) {
  // Whole-machine jobs arriving back-to-back through a capacity-1 queue:
  // the generator must block (and the vtime it spends blocked must be
  // visible as backpressure_ns).
  JobsConfig cfg = base_config();
  cfg.queue_capacity = 1;
  const int nodes = cfg.machine.nodes;
  for (int i = 0; i < 4; ++i) {
    cfg.jobs.push_back(
        job(static_cast<uint64_t>(i), JobKind::kMatgen, nodes, 512, 3, 0));
  }
  const JobsResult res = run_jobs(cfg);
  EXPECT_EQ(res.completed_jobs, 4);
  EXPECT_GT(res.backpressure_ns, 0);
  EXPECT_EQ(res.max_queue_depth, 1u);
  // Whole-machine gangs serialize: each waits for its predecessor.
  EXPECT_GT(res.jobs[3].wait_ns, 0);
}

TEST(JobsScheduler, ReplayIsByteIdenticalAcrossPolicies) {
  for (const Policy policy :
       {Policy::kFifo, Policy::kBackfill, Policy::kSmallestFirst}) {
    JobsConfig cfg = base_config();
    cfg.machine.nodes = 8;
    cfg.machine.backbone_bytes_per_ns = 4.0;
    cfg.policy = policy;
    cfg.seed = 11;
    cfg.job_count = 10;
    const std::string a = to_json(cfg, run_jobs(cfg));
    const std::string b = to_json(cfg, run_jobs(cfg));
    EXPECT_EQ(a, b) << "policy " << policy_name(policy);
    EXPECT_NE(a.find("\"schema\": \"ppm_jobs/v1\""), std::string::npos);
  }
}

TEST(JobsScheduler, BackfillOvertakesFifoHeadOfLineBlocking) {
  // Stream: a long 2-node job holding half the machine, then a whole-
  // machine gang that cannot start while it runs, then a 1-node job.
  // FIFO keeps the third job stuck behind the gang; backfill slots it
  // onto a free node immediately, so it completes first. (The blocker is
  // multi-node on purpose: single-node jobs have no inter-node traffic
  // and finish in near-zero virtual time.)
  const auto stream = [](int nodes) {
    return std::vector<JobSpec>{
        job(0, JobKind::kMatgen, 2, 1024, 6, 0),
        job(1, JobKind::kMatgen, nodes, 512, 3, 10'000),
        job(2, JobKind::kCg, 1, 128, 2, 20'000),
    };
  };
  JobsConfig fifo = base_config();
  fifo.jobs = stream(fifo.machine.nodes);
  fifo.policy = Policy::kFifo;
  JobsConfig bf = fifo;
  bf.policy = Policy::kBackfill;
  const JobsResult rf = run_jobs(fifo);
  const JobsResult rb = run_jobs(bf);
  ASSERT_EQ(rf.completed_jobs, 3);
  ASSERT_EQ(rb.completed_jobs, 3);
  // Under FIFO job 2 waits for the gang; under backfill it does not.
  EXPECT_GT(rf.jobs[2].wait_ns, 0);
  EXPECT_EQ(rb.jobs[2].wait_ns, 0);
  EXPECT_NE(rf.completion_order, rb.completion_order);
  EXPECT_LT(rb.jobs[2].latency_ns, rf.jobs[2].latency_ns);
  // Scheduling differences must never leak into committed state.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rf.jobs[i].state_digest, rb.jobs[i].state_digest);
  }
}

TEST(JobsScheduler, SmallestFirstPicksSmallestFittingGang) {
  // Two free nodes; queue holds a 2-node job (first) and a 1-node job.
  // Backfill launches the 2-node job, smallest-first the 1-node one.
  const auto stream = [](int nodes) {
    return std::vector<JobSpec>{
        job(0, JobKind::kMatgen, nodes, 512, 4, 0),  // occupy everything
        job(1, JobKind::kMatgen, 2, 256, 2, 5'000),
        job(2, JobKind::kCg, 1, 128, 2, 6'000),
    };
  };
  JobsConfig bf = base_config();
  bf.machine.nodes = 2;
  bf.jobs = stream(2);
  bf.policy = Policy::kBackfill;
  JobsConfig sf = bf;
  sf.policy = Policy::kSmallestFirst;
  const JobsResult rb = run_jobs(bf);
  const JobsResult rs = run_jobs(sf);
  ASSERT_EQ(rb.completed_jobs, 3);
  ASSERT_EQ(rs.completed_jobs, 3);
  // After job 0 finishes both queued jobs fit; the tie-break differs.
  EXPECT_LT(rb.jobs[1].start_ns, rb.jobs[2].start_ns);
  EXPECT_LT(rs.jobs[2].start_ns, rs.jobs[1].start_ns);
}

TEST(JobsScheduler, PreemptedJobResumesAndMatchesIsolated) {
  // Job 0 is drained at its first chunk boundary while a gang is queued;
  // the gang takes the machine, then job 0 relaunches from its checkpoint
  // — on whatever nodes are free — and must still commit the exact state
  // of an uninterrupted isolated run.
  JobsConfig cfg = base_config();
  cfg.jobs = {
      job(0, JobKind::kCg, 2, 256, 6, 0),
      job(1, JobKind::kMatgen, cfg.machine.nodes, 512, 2, 5'000),
  };
  cfg.steps_per_chunk = 2;
  cfg.preempt_job_id = 0;
  const JobsResult res = run_jobs(cfg);
  EXPECT_EQ(res.completed_jobs, 2);
  const JobStats& st = res.jobs[0];
  EXPECT_EQ(st.preemptions, 1);
  EXPECT_EQ(st.state_digest, run_job_isolated(st.spec, cfg));
  EXPECT_EQ(res.jobs[1].state_digest, run_job_isolated(res.jobs[1].spec, cfg));
  // The whole run replays bit-identically, preemption included.
  EXPECT_EQ(to_json(cfg, res), to_json(cfg, run_jobs(cfg)));
}

TEST(JobsScheduler, ContentionIsAttributedPerJob) {
  // Two 2-node jobs co-resident on disjoint halves of a 4-node machine
  // with a slow shared backbone: both must record fabric traffic, at
  // least one must record backbone queueing, and the totals must add up.
  JobsConfig cfg = base_config();
  cfg.machine.backbone_bytes_per_ns = 0.05;
  cfg.jobs = {
      job(0, JobKind::kMatgen, 2, 2048, 3, 0),
      job(1, JobKind::kMatgen, 2, 2048, 3, 0),
  };
  const JobsResult res = run_jobs(cfg);
  ASSERT_EQ(res.completed_jobs, 2);
  // Truly co-scheduled: disjoint placements, overlapping run windows.
  EXPECT_EQ(res.jobs[0].machine_nodes, (std::vector<int>{0, 1}));
  EXPECT_EQ(res.jobs[1].machine_nodes, (std::vector<int>{2, 3}));
  EXPECT_LT(res.jobs[1].start_ns, res.jobs[0].finish_ns);
  uint64_t bytes = 0;
  uint64_t wait = 0;
  for (const JobStats& st : res.jobs) {
    EXPECT_GT(st.fabric_tx_bytes, 0u);
    bytes += st.fabric_tx_bytes;
    wait += st.backbone_wait_ns;
  }
  EXPECT_GT(wait, 0u);
  EXPECT_EQ(bytes, res.fabric_bytes);
  EXPECT_EQ(wait, res.backbone_wait_ns);
  // Contention moves time, never state.
  EXPECT_EQ(res.jobs[0].state_digest, run_job_isolated(res.jobs[0].spec, cfg));
  EXPECT_EQ(res.jobs[1].state_digest, run_job_isolated(res.jobs[1].spec, cfg));
}

TEST(JobsScheduler, SampledStreamDigestsMatchIsolatedRuns) {
  // The full multi-tenant oracle over a sampled heterogeneous stream with
  // contention on: every completed job committed exactly what it would
  // have alone.
  JobsConfig cfg = base_config();
  cfg.machine.nodes = 8;
  cfg.machine.backbone_bytes_per_ns = 4.0;
  cfg.policy = Policy::kBackfill;
  cfg.seed = 5;
  cfg.job_count = 8;
  const JobsResult res = run_jobs(cfg);
  EXPECT_EQ(res.completed_jobs + res.rejected_jobs,
            static_cast<int>(res.jobs.size()));
  EXPECT_GT(res.completed_jobs, 0);
  for (const JobStats& st : res.jobs) {
    if (st.rejected) continue;
    EXPECT_EQ(st.state_digest, run_job_isolated(st.spec, cfg))
        << "job " << st.spec.id << " (" << kind_name(st.spec.kind) << ")";
  }
}

}  // namespace
}  // namespace ppm::jobs
