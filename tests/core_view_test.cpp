// Zero-copy view() reads, struct-typed shared arrays, and the gather API.
#include <gtest/gtest.h>

#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

PpmConfig cfg(int nodes, int cores = 2) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = cores;
  return c;
}

struct Particle {
  double x = 0, y = 0;
  int64_t tag = 0;
};

TEST(SharedView, LocalViewAliasesCommittedStorage) {
  run(cfg(2), [&](Env& env) {
    auto a = env.global_array<double>(16);
    for (uint64_t i = a.local_begin(); i < a.local_end(); ++i) {
      a.set(i, static_cast<double>(i));
    }
    const double& ref = a.view(a.local_begin());
    EXPECT_DOUBLE_EQ(ref, static_cast<double>(a.local_begin()));
    // The view aliases committed storage, so a direct (outside-phase,
    // immediate) write shows through it.
    a.set(a.local_begin(), 99.0);
    EXPECT_DOUBLE_EQ(ref, 99.0);
  });
}

TEST(SharedView, RemoteViewSeesPhaseStartSnapshot) {
  std::vector<double> seen;
  run(cfg(2, 1), [&](Env& env) {
    auto a = env.global_array<double>(4);  // node 0: {0,1}, node 1: {2,3}
    auto vps = env.ppm_do(1);
    vps.global_phase([&](Vp&) {
      if (env.node_id() == 1) a.set(3, 5.0);
    });
    vps.global_phase([&](Vp&) {
      if (env.node_id() == 0) {
        seen.push_back(a.view(3));  // remote: resolved via block cache
        seen.push_back(a.view(3));  // second read: same snapshot
      }
      if (env.node_id() == 1) a.set(3, 7.0);  // deferred
    });
    vps.global_phase([&](Vp&) {
      if (env.node_id() == 0) seen.push_back(a.view(3));
    });
  });
  EXPECT_EQ(seen, (std::vector<double>{5.0, 5.0, 7.0}));
}

TEST(SharedView, StructElementsRoundTrip) {
  Particle got{};
  run(cfg(3, 1), [&](Env& env) {
    auto a = env.global_array<Particle>(9);  // 3 per node
    auto vps = env.ppm_do(3);
    vps.global_phase([&](Vp& vp) {
      Particle p;
      p.x = static_cast<double>(vp.global_rank()) * 1.5;
      p.y = -p.x;
      p.tag = static_cast<int64_t>(vp.global_rank());
      a.set(vp.global_rank(), p);
    });
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        got = a.view(8);  // remote struct read
      }
    });
  });
  EXPECT_DOUBLE_EQ(got.x, 12.0);
  EXPECT_DOUBLE_EQ(got.y, -12.0);
  EXPECT_EQ(got.tag, 8);
}

TEST(SharedView, AccumulateOnStructRejected) {
  EXPECT_THROW(run(cfg(1, 1),
                   [&](Env& env) {
                     auto a = env.global_array<Particle>(2);
                     auto vps = env.ppm_do(1);
                     vps.global_phase(
                         [&](Vp&) { a.add(0, Particle{}); });
                   }),
               Error);
}

TEST(SharedView, ViewWorksWithBundlingDisabled) {
  PpmConfig c = cfg(2, 1);
  c.runtime.bundle_reads = false;
  std::vector<double> seen;
  run(c, [&](Env& env) {
    auto a = env.global_array<double>(4);
    auto vps = env.ppm_do(1);
    vps.global_phase([&](Vp&) {
      if (env.node_id() == 1) a.set(3, 2.5);
    });
    vps.global_phase([&](Vp&) {
      if (env.node_id() == 0) {
        // Unbundled fetches park payloads in the phase arena; both views
        // must stay valid simultaneously.
        const double& v1 = a.view(2);
        const double& v2 = a.view(3);
        seen.push_back(v1);
        seen.push_back(v2);
      }
    });
  });
  EXPECT_EQ(seen, (std::vector<double>{0.0, 2.5}));
}

TEST(SharedGather, MixedLocalAndRemoteOrderPreserved) {
  std::vector<int64_t> got;
  run(cfg(4, 1), [&](Env& env) {
    auto a = env.global_array<int64_t>(16);  // 4 per node
    auto vps = env.ppm_do(4);
    vps.global_phase([&](Vp& vp) {
      a.set(vp.global_rank(), static_cast<int64_t>(vp.global_rank() * 10));
    });
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 1 && vp.node_rank() == 0) {
        const std::vector<uint64_t> idx = {15, 4, 0, 5, 9, 1, 14};
        got = a.gather(idx);  // 4,5 local; others on 3 remote nodes
      }
    });
  });
  EXPECT_EQ(got, (std::vector<int64_t>{150, 40, 0, 50, 90, 10, 140}));
}

TEST(SharedGather, OutOfRangeIndexRejected) {
  EXPECT_THROW(run(cfg(2, 1),
                   [&](Env& env) {
                     auto a = env.global_array<double>(4);
                     auto vps = env.ppm_do(1);
                     vps.global_phase([&](Vp&) {
                       const std::vector<uint64_t> idx = {0, 9};
                       (void)a.gather(idx);
                     });
                   }),
               Error);
}

TEST(SharedGather, EmptyIndexListIsFine) {
  run(cfg(2, 1), [&](Env& env) {
    auto a = env.global_array<double>(4);
    auto vps = env.ppm_do(1);
    vps.global_phase([&](Vp&) {
      EXPECT_TRUE(a.gather({}).empty());
    });
  });
}

TEST(SharedGather, LargeGatherAcrossAllNodes) {
  std::vector<double> got;
  run(cfg(4, 2), [&](Env& env) {
    auto a = env.global_array<double>(1000);
    for (uint64_t i = a.local_begin(); i < a.local_end(); ++i) {
      a.set(i, static_cast<double>(i) * 0.5);
    }
    env.barrier();
    auto vps = env.ppm_do(env.node_id() == 2 ? 1 : 0);
    vps.global_phase([&](Vp&) {
      std::vector<uint64_t> idx;
      for (uint64_t i = 0; i < 1000; i += 3) idx.push_back(i);
      got = a.gather(idx);
    });
  });
  ASSERT_EQ(got.size(), 334u);
  for (size_t j = 0; j < got.size(); ++j) {
    EXPECT_DOUBLE_EQ(got[j], static_cast<double>(j * 3) * 0.5);
  }
}

}  // namespace
}  // namespace ppm
