// Failure injection: garbled wire payloads, protocol misuse, resource
// exhaustion corners. The library must fail loudly (ppm::Error), never
// silently corrupt.
#include <gtest/gtest.h>

#include "cluster/machine.hpp"
#include "core/ppm.hpp"
#include "core/wire.hpp"
#include "jobs/jobs.hpp"
#include "mp/comm.hpp"

namespace ppm {
namespace {

TEST(FailureInjection, GarbledTypedPayloadRejected) {
  // A raw 3-byte message decoded as a typed vector must throw, not crash.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  mp::World world(machine);
  machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    if (comm.rank() == 0) {
      comm.send(1, 0, Bytes(3, std::byte{0xff}));
    } else {
      EXPECT_THROW((void)comm.recv_vec<double>(0, 0), Error);
    }
  });
}

TEST(FailureInjection, TruncatedLengthPrefixRejected) {
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  mp::World world(machine);
  machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    if (comm.rank() == 0) {
      // Claims 1000 doubles, carries none.
      ByteWriter w;
      w.put<uint64_t>(1000);
      comm.send(1, 0, std::move(w).take());
    } else {
      EXPECT_THROW((void)comm.recv_vec<double>(0, 0), Error);
    }
  });
}

TEST(FailureInjection, MalformedRuntimeMessageRejected) {
  // A truncated GetBlock request sent straight to a node's service port
  // must be detected by the bounds-checked deserializer.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        if (node == 0) {
          net::Message m;
          m.src_node = 0;
          m.src_port = machine.service_port();
          m.dst_node = 1;
          m.dst_port = machine.service_port();
          m.kind = detail::rt_kind(detail::RtMsg::kGetBlock);
          m.payload = Bytes(2, std::byte{0});  // far too short
          machine.fabric().send(std::move(m));
        }
        Env env(nr);
        env.barrier();
        nr.finish();
      }),
      Error);
}

TEST(FailureInjection, GetForUnknownArrayRejected) {
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        if (node == 0) {
          ByteWriter w;
          w.put<uint32_t>(42);  // no such array
          w.put<uint64_t>(0);   // first
          w.put<uint64_t>(1);   // count
          w.put<uint64_t>(1);   // req id
          w.put<uint64_t>(detail::kAsyncEpoch);
          net::Message m;
          m.src_node = 0;
          m.src_port = machine.service_port();
          m.dst_node = 1;
          m.dst_port = machine.service_port();
          m.kind = detail::rt_kind(detail::RtMsg::kGetBlock);
          m.payload = std::move(w).take();
          machine.fabric().send(std::move(m));
        }
        Env env(nr);
        env.barrier();
        nr.finish();
      }),
      Error);
}

namespace {
// Send one raw runtime-service message from node 0 to node 1.
void inject(cluster::Machine& machine, detail::RtMsg kind, Bytes payload) {
  net::Message m;
  m.src_node = 0;
  m.src_port = machine.service_port();
  m.dst_node = 1;
  m.dst_port = machine.service_port();
  m.kind = detail::rt_kind(kind);
  m.payload = std::move(payload);
  machine.fabric().send(std::move(m));
}
}  // namespace

TEST(FailureInjection, TruncatedPrefetchBlockRejected) {
  // A lookahead request too short to even carry its array id must be
  // caught by the bounds-checked deserializer, not read past the buffer.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        if (node == 0) {
          inject(machine, detail::RtMsg::kPrefetchBlock,
                 Bytes(2, std::byte{0x5a}));
        }
        Env env(nr);
        env.barrier();
        nr.finish();
      }),
      Error);
}

TEST(FailureInjection, PrefetchForUnknownArrayRejected) {
  // Well-formed prefetch at the async epoch (never treated as stale) for
  // an array id that was never allocated: must fail loudly in serve_get.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        if (node == 0) {
          ByteWriter w;
          w.put<uint32_t>(42);  // no such array
          w.put<uint64_t>(0);   // first
          w.put<uint64_t>(1);   // count
          w.put<uint64_t>(9);   // req id
          w.put<uint64_t>(detail::kAsyncEpoch);
          inject(machine, detail::RtMsg::kPrefetchBlock,
                 std::move(w).take());
        }
        Env env(nr);
        env.barrier();
        nr.finish();
      }),
      Error);
}

TEST(FailureInjection, StalePrefetchSilentlyDropped) {
  // The one legitimate garble: a lookahead that straggles past the
  // requester's commit is dropped without error (the requester abandoned
  // its slot), so a run with such a message still finishes clean.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  uint64_t seen = 0;
  machine.run_per_node([&](int node) {
    NodeRuntime& nr = runtime.node(node);
    nr.start();
    Env env(nr);
    auto a = env.global_array<uint64_t>(8);
    auto vps = env.ppm_do(1);
    vps.global_phase([&](Vp& vp) { a.set(vp.global_rank(), 5); });
    vps.global_phase([&](Vp&) {});
    if (node == 0) {
      ByteWriter w;
      w.put<uint32_t>(a.id());
      w.put<uint64_t>(0);  // first
      w.put<uint64_t>(1);  // count
      w.put<uint64_t>(9);  // req id
      w.put<uint64_t>(0);  // epoch 0: two commits stale by now
      inject(machine, detail::RtMsg::kPrefetchBlock, std::move(w).take());
    }
    env.barrier();
    vps.global_phase([&](Vp& vp) { seen = a.get(vp.global_rank()); });
    nr.finish();
  });
  EXPECT_EQ(seen, 5u);
}

TEST(FailureInjection, TruncatedAccumBlockRejected) {
  // An owner-side accumulate fragment too short to carry its epoch header
  // must be caught by the bounds-checked deserializer at arrival.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        if (node == 0) {
          inject(machine, detail::RtMsg::kAccumBlock,
                 Bytes(3, std::byte{0x21}));
        }
        Env env(nr);
        env.barrier();
        nr.finish();
      }),
      Error);
}

TEST(FailureInjection, AccumBlockUnknownArrayRejected) {
  // Well-formed kAccumBlock record header naming an array id that was
  // never allocated: handle_accum must reject the whole frame before
  // staging it, not corrupt a later commit.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        if (node == 0) {
          ByteWriter w;
          w.put<uint64_t>(0);   // epoch
          w.put<uint32_t>(42);  // no such array
          w.put<uint8_t>(1);    // kAdd
          w.put<uint64_t>(0);   // first
          w.put<uint32_t>(1);   // count
          w.put<uint64_t>(7);   // one "element"
          inject(machine, detail::RtMsg::kAccumBlock, std::move(w).take());
        }
        Env env(nr);
        env.barrier();
        nr.finish();
      }),
      Error);
}

TEST(FailureInjection, AccumListInvalidOpRejected) {
  // kSet (op 0) is not an accumulate op: a list item carrying it is a
  // protocol violation (set entries must ride the ordered kBundle path,
  // where (vp_rank, seq) makes them deterministic).
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        Env env(nr);
        auto a = env.global_array<uint64_t>(8);
        if (node == 0) {
          ByteWriter w;
          w.put<uint64_t>(0);      // epoch
          w.put<uint32_t>(1);      // one item
          w.put(a.id());
          w.put<uint8_t>(0);       // WriteOp::kSet — invalid here
          w.put<uint64_t>(0);      // index
          w.put<uint64_t>(9);      // value
          inject(machine, detail::RtMsg::kAccumList, std::move(w).take());
        }
        env.barrier();
        nr.finish();
      }),
      Error);
}

TEST(FailureInjection, AccumListTrailingBytesRejected) {
  // A list frame whose item count is satisfied but which carries extra
  // trailing bytes is garbled — rejected, never silently ignored.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        Env env(nr);
        auto a = env.global_array<uint64_t>(8);
        if (node == 0) {
          ByteWriter w;
          w.put<uint64_t>(0);  // epoch
          w.put<uint32_t>(1);  // one item
          w.put(a.id());
          w.put<uint8_t>(1);   // kAdd
          w.put<uint64_t>(0);  // index
          w.put<uint64_t>(9);  // value
          w.put<uint8_t>(0xcc);  // trailing garbage
          inject(machine, detail::RtMsg::kAccumList, std::move(w).take());
        }
        env.barrier();
        nr.finish();
      }),
      Error);
}

TEST(FailureInjection, AccumRangeOutOfBoundsRejected) {
  // A range record whose [first, first+count) spills past the array end
  // must be rejected before any element is touched.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        Env env(nr);
        auto a = env.global_array<uint64_t>(8);
        if (node == 0) {
          ByteWriter w;
          w.put<uint64_t>(0);   // epoch
          w.put(a.id());
          w.put<uint8_t>(1);    // kAdd
          w.put<uint64_t>(6);   // first
          w.put<uint32_t>(4);   // count: 6 + 4 > 8
          for (int i = 0; i < 4; ++i) w.put<uint64_t>(1);
          inject(machine, detail::RtMsg::kAccumBlock, std::move(w).take());
        }
        env.barrier();
        nr.finish();
      }),
      Error);
}

TEST(FailureInjection, StaleAccumFragmentRejected) {
  // Accumulate fragments are flushed before the sender's last-marker
  // bundle, so one arriving for an epoch the receiver already committed
  // can only be protocol misuse — rejected loudly, unlike stale
  // prefetches (which a requester legitimately abandons).
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        Env env(nr);
        auto a = env.global_array<uint64_t>(8);
        auto vps = env.ppm_do(1);
        vps.global_phase([&](Vp& vp) { a.set(vp.global_rank(), 1); });
        vps.global_phase([&](Vp&) {});  // two commits: epoch_ is now 2
        if (node == 0) {
          ByteWriter w;
          w.put<uint64_t>(0);  // epoch 0: already committed
          w.put(a.id());
          w.put<uint8_t>(1);   // kAdd
          w.put<uint64_t>(0);  // first
          w.put<uint32_t>(1);  // count
          w.put<uint64_t>(9);  // value
          inject(machine, detail::RtMsg::kAccumBlock, std::move(w).take());
        }
        env.barrier();
        vps.global_phase([&](Vp&) {});
        nr.finish();
      }),
      Error);
}

namespace {
// Accumulate-heavy program with plenty of remote owner-side traffic:
// every VP accumulates into a shifted window of a global array with a mix
// of add/min/max/xor, over several epochs. Returns the final contents.
std::vector<uint64_t> run_accum_program(bool faults) {
  PpmConfig c;
  c.machine.nodes = 3;
  c.machine.cores_per_node = 2;
  if (faults) {
    c.machine.faults.delay_jitter = true;
    c.machine.faults.seed = 23;
    c.machine.faults.delay_probability = 0.5;
    c.machine.faults.max_extra_delay_ns = 100'000;
  }
  constexpr uint64_t kN = 64;
  std::vector<uint64_t> out;
  run(c, [&](Env& env) {
    auto a = env.global_array<uint64_t>(kN);
    env.register_accum_op<uint64_t>(
        a, 0, +[](uint64_t& x, const uint64_t& v) { x ^= v; });
    auto vps = env.ppm_do(4);
    for (int round = 0; round < 3; ++round) {
      vps.global_phase([&](Vp& vp) {
        const uint64_t r = vp.global_rank();
        a.accumulate((r * 7 + 11) % kN, ReduceOp::kAdd, r + 1);
        a.accumulate((r * 5 + 3) % kN, ReduceOp::kMax, r * 100);
        a.accumulate((r * 3 + 1) % kN, ReduceOp::kUser0, r * 0x9e37);
      });
    }
    vps.global_phase([&](Vp& vp) {
      if (vp.global_rank() == 0) {
        for (uint64_t i = 0; i < kN; ++i) out.push_back(a.get(i));
      }
    });
  });
  return out;
}
}  // namespace

TEST(FailureInjection, FaultDelayedAccumTrafficIsDeterministic) {
  // Seeded fabric jitter delays kAccumList/kAccumBlock fragments, but the
  // per-(src,dst,port) FIFO plus source-ascending owner-side apply keep
  // the committed state bit-identical to the fault-free run — and the
  // faulted run replays byte-for-byte.
  const std::vector<uint64_t> clean = run_accum_program(false);
  const std::vector<uint64_t> faulted1 = run_accum_program(true);
  const std::vector<uint64_t> faulted2 = run_accum_program(true);
  ASSERT_EQ(clean.size(), 64u);
  EXPECT_EQ(clean, faulted1);
  EXPECT_EQ(faulted1, faulted2);
}

TEST(FailureInjection, TruncatedMigrateBlockRejected) {
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        if (node == 0) {
          inject(machine, detail::RtMsg::kMigrateBlock,
                 Bytes(3, std::byte{0x7f}));
        }
        Env env(nr);
        env.barrier();
        nr.finish();
      }),
      Error);
}

TEST(FailureInjection, UnplannedMigrateBlockRejected) {
  // A well-formed migration payload nobody planned: the receiver stages
  // it, and the next migration round's arrival count check must reject it
  // rather than splice foreign bytes into committed storage.
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) {
        NodeRuntime& nr = runtime.node(node);
        nr.start();
        Env env(nr);
        auto a = env.global_array<uint64_t>(64, Distribution::kAdaptive);
        if (node == 0) {
          ByteWriter w;
          w.put<uint32_t>(a.id());
          w.put<uint64_t>(0);               // block 0
          for (int i = 0; i < 8; ++i) w.put<uint64_t>(0xdead);  // elems
          inject(machine, detail::RtMsg::kMigrateBlock, std::move(w).take());
        }
        a.rebalance();  // force a migration round at the next commit
        auto vps = env.ppm_do(1);
        vps.global_phase([&](Vp& vp) { a.set(vp.global_rank(), 1); });
        nr.finish();
      }),
      Error);
}

TEST(FailureInjection, MismatchedReduceContributionsRejected) {
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  mp::World world(machine);
  EXPECT_THROW(machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    // Rank 0 contributes 2 elements, rank 1 contributes 3.
    std::vector<long> mine(comm.rank() == 0 ? 2 : 3, 1);
    (void)comm.reduce(std::span<const long>(mine),
                      [](long a, long b) { return a + b; }, 0);
  }),
               Error);
}

TEST(FailureInjection, AlltoallvWrongBlockCountRejected) {
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  mp::World world(machine);
  EXPECT_THROW(machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    std::vector<std::vector<int>> blocks(1);  // need size() == 2
    (void)comm.alltoallv(blocks);
  }),
               Error);
}

TEST(FailureInjection, DoubleStartRejected) {
  cluster::Machine machine({.nodes = 1, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(machine.run_per_node([&](int node) {
    NodeRuntime& nr = runtime.node(node);
    nr.start();
    nr.start();  // misuse
  }),
               Error);
}

TEST(FailureInjection, FinishWithoutStartRejected) {
  cluster::Machine machine({.nodes = 1, .cores_per_node = 1});
  Runtime runtime(machine, RuntimeOptions{});
  EXPECT_THROW(
      machine.run_per_node([&](int node) { runtime.node(node).finish(); }),
      Error);
}

TEST(FailureInjection, StragglerNodeStillSynchronizes) {
  // One node arrives at each phase long after the others (heavy modeled
  // compute): phases must still commit the same values.
  PpmConfig cfg;
  cfg.machine.nodes = 3;
  cfg.machine.cores_per_node = 2;
  int64_t total = -1;
  run(cfg, [&](Env& env) {
    auto a = env.global_array<int64_t>(3);
    auto vps = env.ppm_do(1);
    for (int round = 0; round < 5; ++round) {
      vps.global_phase([&](Vp&) {
        if (env.node_id() == 1) {
          sim::advance_ns(2'000'000);  // 2 ms straggler every phase
        }
        a.add(static_cast<uint64_t>(env.node_id()), 1);
      });
    }
    vps.global_phase([&](Vp&) {
      if (env.node_id() == 0) {
        total = a.get(0) + a.get(1) + a.get(2);
      }
    });
  });
  EXPECT_EQ(total, 15);
}

// Two explicit jobs co-scheduled by ppm::jobs on disjoint halves of one
// machine. jobs::JobSpec/JobsConfig come from src/jobs (docs/SCHEDULER.md).
jobs::JobsConfig two_tenant_config(bool faulted) {
  jobs::JobsConfig cfg;
  cfg.machine.nodes = 4;
  cfg.machine.cores_per_node = 2;
  cfg.machine.backbone_bytes_per_ns = 2.0;
  cfg.machine.engine.calibration = sim::CalibrationMode::kModeledOnly;
  if (faulted) {
    // Seeded jitter on every fabric message — in a co-scheduled run this
    // delays BOTH tenants' traffic through the shared backbone.
    cfg.machine.faults.delay_jitter = true;
    cfg.machine.faults.seed = 99;
    cfg.machine.faults.delay_probability = 0.5;
    cfg.machine.faults.max_extra_delay_ns = 50'000;
  }
  jobs::JobSpec a;
  a.id = 0;
  a.kind = jobs::JobKind::kCg;
  a.nodes_required = 2;
  a.size = 256;
  a.steps = 3;
  a.seed = 17;
  a.arrival_ns = 0;
  jobs::JobSpec b = a;
  b.id = 1;
  b.kind = jobs::JobKind::kMatgen;
  b.size = 512;
  b.seed = 18;
  cfg.jobs = {a, b};
  return cfg;
}

TEST(FailureInjection, FaultedCoTenantDoesNotPerturbCommittedState) {
  // Fault injection may move virtual time around, but a co-scheduled
  // job's committed state must stay bit-identical to the clean run AND to
  // the same job alone on an idle, fault-free machine.
  const jobs::JobsResult clean = jobs::run_jobs(two_tenant_config(false));
  const jobs::JobsResult faulted = jobs::run_jobs(two_tenant_config(true));
  ASSERT_EQ(clean.completed_jobs, 2);
  ASSERT_EQ(faulted.completed_jobs, 2);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(clean.jobs[i].state_digest, faulted.jobs[i].state_digest);
    EXPECT_EQ(faulted.jobs[i].state_digest,
              jobs::run_job_isolated(faulted.jobs[i].spec,
                                     two_tenant_config(false)));
  }
  // The faults really fired: they cost the faulted run virtual time.
  EXPECT_GE(faulted.makespan_ns, clean.makespan_ns);
}

TEST(FailureInjection, FaultedCoScheduleReplaysDeterministically) {
  // Same fault seed => the whole multi-tenant run (completion order,
  // per-job vtimes, every counter) replays byte-for-byte.
  const jobs::JobsConfig cfg = two_tenant_config(true);
  const jobs::JobsResult r1 = jobs::run_jobs(cfg);
  const jobs::JobsResult r2 = jobs::run_jobs(cfg);
  EXPECT_EQ(jobs::to_json(cfg, r1), jobs::to_json(cfg, r2));
  EXPECT_EQ(r1.completion_order, r2.completion_order);
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (size_t i = 0; i < r1.jobs.size(); ++i) {
    EXPECT_EQ(r1.jobs[i].finish_ns, r2.jobs[i].finish_ns);
    EXPECT_EQ(r1.jobs[i].fabric_tx_bytes, r2.jobs[i].fabric_tx_bytes);
  }
}

}  // namespace
}  // namespace ppm
