// Differential testing of PPM semantics against a sequential golden model.
//
// A random "phase program" is generated: a sequence of global phases in
// which every VP performs a random mix of reads, sets, and accumulate ops
// on a set of shared arrays (values derived deterministically from what it
// read, so read-snapshot bugs change the final state). The same program is
// executed (a) on the full distributed runtime across many machine shapes
// and option combinations, and (b) by a tiny sequential interpreter that
// implements the normative semantics of DESIGN.md §5 directly. Final array
// contents must match bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/ppm.hpp"
#include "util/rng.hpp"

namespace ppm {
namespace {

enum class OpKind : uint8_t { kSet, kAdd, kMin, kMax };

struct ProgramOp {
  uint32_t array;     // which shared array
  OpKind kind;
  uint64_t read_at;   // element whose phase-start value feeds the write
  uint64_t write_at;  // element written
};

struct PhaseSpec {
  // ops[vp_rank] = the op sequence that VP performs.
  std::vector<std::vector<ProgramOp>> ops;
};

struct ProgramSpec {
  uint64_t total_vps = 0;
  std::vector<uint64_t> array_sizes;
  std::vector<PhaseSpec> phases;
};

ProgramSpec make_program(uint64_t seed, uint64_t total_vps, int num_arrays,
                         int num_phases, int ops_per_vp) {
  Rng rng(seed);
  ProgramSpec spec;
  spec.total_vps = total_vps;
  for (int a = 0; a < num_arrays; ++a) {
    spec.array_sizes.push_back(rng.next_in(3, 40));
  }
  for (int p = 0; p < num_phases; ++p) {
    PhaseSpec phase;
    phase.ops.resize(total_vps);
    for (uint64_t vp = 0; vp < total_vps; ++vp) {
      const int ops = static_cast<int>(rng.next_in(0, ops_per_vp));
      for (int o = 0; o < ops; ++o) {
        ProgramOp op;
        op.array = static_cast<uint32_t>(rng.next_below(num_arrays));
        op.kind = static_cast<OpKind>(rng.next_below(4));
        const uint64_t n = spec.array_sizes[op.array];
        op.read_at = rng.next_below(n);
        op.write_at = rng.next_below(n);
        phase.ops[vp].push_back(op);
      }
    }
    spec.phases.push_back(std::move(phase));
  }
  return spec;
}

/// The value a VP writes: a deterministic mix of what it read, its rank and
/// the op position — any snapshot or ordering bug perturbs it.
int64_t derive(int64_t read_value, uint64_t vp, int op_index) {
  return read_value * 31 + static_cast<int64_t>(vp) * 7 + op_index + 1;
}

/// Sequential interpreter of the normative semantics.
std::vector<std::vector<int64_t>> golden_run(const ProgramSpec& spec) {
  std::vector<std::vector<int64_t>> arrays;
  for (uint64_t n : spec.array_sizes) {
    arrays.emplace_back(n, 0);  // zero-initialized like the runtime
  }
  struct Entry {
    uint64_t vp;
    uint32_t seq;
    uint32_t array;
    OpKind kind;
    uint64_t index;
    int64_t value;
  };
  for (const PhaseSpec& phase : spec.phases) {
    const auto snapshot = arrays;  // phase-start values
    std::vector<Entry> log;
    for (uint64_t vp = 0; vp < spec.total_vps; ++vp) {
      uint32_t seq = 0;
      for (size_t o = 0; o < phase.ops[vp].size(); ++o) {
        const ProgramOp& op = phase.ops[vp][o];
        const int64_t read = snapshot[op.array][op.read_at];
        log.push_back(Entry{vp, seq++, op.array, op.kind, op.write_at,
                            derive(read, vp, static_cast<int>(o))});
      }
    }
    std::stable_sort(log.begin(), log.end(), [](const Entry& a,
                                                const Entry& b) {
      return a.vp != b.vp ? a.vp < b.vp : a.seq < b.seq;
    });
    for (const Entry& e : log) {
      int64_t& slot = arrays[e.array][e.index];
      switch (e.kind) {
        case OpKind::kSet: slot = e.value; break;
        case OpKind::kAdd: slot += e.value; break;
        case OpKind::kMin: slot = std::min(slot, e.value); break;
        case OpKind::kMax: slot = std::max(slot, e.value); break;
      }
    }
  }
  return arrays;
}

struct GoldenCase {
  uint64_t seed;
  int nodes;
  int cores;
  bool bundle;
  bool eager;
  SchedulePolicy schedule;
  Distribution dist = Distribution::kBlock;
};

class GoldenModel : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenModel, RuntimeMatchesSequentialSemantics) {
  const GoldenCase& gc = GetParam();
  const ProgramSpec spec =
      make_program(gc.seed, /*total_vps=*/24, /*num_arrays=*/3,
                   /*num_phases=*/6, /*ops_per_vp=*/5);
  const auto expect = golden_run(spec);

  PpmConfig config;
  config.machine.nodes = gc.nodes;
  config.machine.cores_per_node = gc.cores;
  config.runtime.bundle_reads = gc.bundle;
  config.runtime.eager_flush = gc.eager;
  config.runtime.flush_threshold_bytes = 128;  // force many fragments
  config.runtime.schedule = gc.schedule;
  config.runtime.read_block_bytes = 64;

  // Run and then read back every element through an extra verification
  // phase executed by a single VP on node 0.
  std::vector<std::vector<int64_t>> got(spec.array_sizes.size());
  run(config, [&](Env& env) {
    std::vector<GlobalShared<int64_t>> arrays;
    for (uint64_t n : spec.array_sizes) {
      arrays.push_back(env.global_array<int64_t>(n, gc.dist));
    }
    const auto nodes = static_cast<uint64_t>(env.node_count());
    const uint64_t per = spec.total_vps / nodes;
    const uint64_t rem = spec.total_vps % nodes;
    const auto me = static_cast<uint64_t>(env.node_id());
    uint64_t k_local = per + (me < rem ? 1 : 0);
    auto vps = env.ppm_do(k_local);
    for (const PhaseSpec& phase : spec.phases) {
      vps.global_phase([&](Vp& vp) {
        const auto& ops = phase.ops[vp.global_rank()];
        for (size_t o = 0; o < ops.size(); ++o) {
          const ProgramOp& op = ops[o];
          const int64_t read = arrays[op.array].get(op.read_at);
          const int64_t value =
              derive(read, vp.global_rank(), static_cast<int>(o));
          switch (op.kind) {
            case OpKind::kSet: arrays[op.array].set(op.write_at, value); break;
            case OpKind::kAdd: arrays[op.array].add(op.write_at, value); break;
            case OpKind::kMin:
              arrays[op.array].min_update(op.write_at, value);
              break;
            case OpKind::kMax:
              arrays[op.array].max_update(op.write_at, value);
              break;
          }
        }
      });
    }
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 0 && vp.node_rank() == 0) {
        for (size_t a = 0; a < arrays.size(); ++a) {
          got[a].resize(spec.array_sizes[a]);
          for (uint64_t i = 0; i < spec.array_sizes[a]; ++i) {
            got[a][i] = arrays[a].get(i);
          }
        }
      }
    });
  });

  ASSERT_EQ(got.size(), expect.size());
  for (size_t a = 0; a < got.size(); ++a) {
    EXPECT_EQ(got[a], expect[a]) << "array " << a << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GoldenModel,
    ::testing::Values(
        GoldenCase{1, 1, 1, true, true, SchedulePolicy::kDynamic},
        GoldenCase{2, 1, 4, true, true, SchedulePolicy::kDynamic},
        GoldenCase{3, 2, 2, true, true, SchedulePolicy::kDynamic},
        GoldenCase{4, 3, 1, true, true, SchedulePolicy::kDynamic},
        GoldenCase{5, 4, 2, true, true, SchedulePolicy::kDynamic},
        GoldenCase{6, 4, 2, false, true, SchedulePolicy::kDynamic},
        GoldenCase{7, 4, 2, true, false, SchedulePolicy::kDynamic},
        GoldenCase{8, 4, 2, false, false, SchedulePolicy::kStatic},
        GoldenCase{9, 2, 3, true, true, SchedulePolicy::kStatic},
        GoldenCase{10, 5, 2, true, true, SchedulePolicy::kDynamic},
        GoldenCase{11, 7, 1, true, false, SchedulePolicy::kStatic},
        GoldenCase{12, 8, 2, false, true, SchedulePolicy::kDynamic},
        GoldenCase{13, 3, 2, true, true, SchedulePolicy::kDynamic,
                   Distribution::kCyclic},
        GoldenCase{14, 4, 2, false, false, SchedulePolicy::kStatic,
                   Distribution::kCyclic},
        GoldenCase{15, 5, 1, true, true, SchedulePolicy::kDynamic,
                   Distribution::kCyclic}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      const auto& c = info.param;
      return "seed" + std::to_string(c.seed) + "_n" +
             std::to_string(c.nodes) + "c" + std::to_string(c.cores) +
             (c.bundle ? "_bundle" : "_nobundle") +
             (c.eager ? "_eager" : "_lazy") +
             (c.schedule == SchedulePolicy::kStatic ? "_static" : "_dyn") +
             (c.dist == Distribution::kCyclic ? "_cyclic" : "");
    });

}  // namespace
}  // namespace ppm
