// Engine and fabric edge cases beyond the basic suites.
#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"

namespace ppm::sim {
namespace {

TEST(EngineEdge, EventScheduledInThePastFiresAtCurrentTime) {
  Engine engine;
  int64_t fired_at = -1;
  engine.spawn("f", [&] {
    engine.advance_ns(5'000);
    engine.at(1'000, [&] { fired_at = engine.engine_now_ns(); });
    engine.sleep_for_ns(10'000);
  });
  engine.run();
  // The event's nominal time is in the past relative to engine progress;
  // it fires without rewinding the engine clock.
  EXPECT_GE(fired_at, 0);
}

TEST(EngineEdge, AdvanceLetsEarlierEventsRunFirst) {
  Engine engine;
  std::vector<int> order;
  engine.at(2'000, [&] { order.push_back(1); });
  engine.spawn("worker", [&] {
    engine.advance_ns(10'000);  // >= kSmallAdvanceNs: scheduling point
    order.push_back(2);
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EngineEdge, SmallAdvanceSkipsSchedulingPoint) {
  Engine engine;
  std::vector<int> order;
  engine.at(10, [&] { order.push_back(1); });
  engine.spawn("worker", [&] {
    // Below kSmallAdvanceNs: accumulates without yielding, so the fiber
    // (spawned first at t=0... event at t=10 is later than spawn) runs on.
    for (int i = 0; i < 100; ++i) engine.advance_ns(5);
    order.push_back(2);
  });
  engine.run();
  // The worker spawned at t=0 runs its whole slice before the t=10 event.
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EngineEdge, ZeroAdvanceIsAllowed) {
  Engine engine;
  engine.spawn("f", [&] {
    engine.advance_ns(0);
    EXPECT_EQ(engine.now_ns(), 0);
  });
  engine.run();
}

TEST(EngineEdge, NegativeAdvanceRejected) {
  Engine engine;
  engine.spawn("f", [&] { EXPECT_THROW(engine.advance_ns(-1), Error); });
  engine.run();
}

TEST(EngineEdge, RunIsNotReentrant) {
  Engine engine;
  engine.spawn("f", [&] { EXPECT_THROW(engine.run(), Error); });
  engine.run();
}

TEST(EngineEdge, EventsFiredCounterAdvances) {
  Engine engine;
  engine.at(1, [] {});
  engine.at(2, [] {});
  engine.run();
  EXPECT_GE(engine.events_fired(), 2u);
}

}  // namespace
}  // namespace ppm::sim

namespace ppm::net {
namespace {

TEST(FabricEdge, ZeroByteMessagesDeliver) {
  sim::Engine engine;
  FabricConfig cfg;
  cfg.num_nodes = 2;
  cfg.ports_per_node = 1;
  Fabric fabric(engine, cfg);
  bool got = false;
  engine.spawn("recv", [&] {
    const Message m = fabric.endpoint(1, 0).recv();
    got = m.payload.empty();
  });
  engine.spawn("send", [&] {
    Message m;
    m.src_node = 0;
    m.dst_node = 1;
    fabric.send(std::move(m));
  });
  engine.run();
  EXPECT_TRUE(got);
}

TEST(FabricEdge, OrderingPreservedUnderHeavyContention) {
  // Many senders to one destination: per-sender FIFO must hold even while
  // the shared NICs serialize everything.
  sim::Engine engine;
  FabricConfig cfg;
  cfg.num_nodes = 5;
  cfg.ports_per_node = 1;
  Fabric fabric(engine, cfg);
  std::vector<std::vector<uint64_t>> seen(4);
  engine.spawn("sink", [&] {
    for (int i = 0; i < 4 * 20; ++i) {
      const Message m = fabric.endpoint(4, 0).recv();
      seen[static_cast<size_t>(m.src_node)].push_back(m.kind);
    }
  });
  for (int s = 0; s < 4; ++s) {
    engine.spawn("src" + std::to_string(s), [&, s] {
      for (uint64_t k = 0; k < 20; ++k) {
        Message m;
        m.src_node = s;
        m.dst_node = 4;
        m.kind = k;
        m.payload.assign(64, std::byte{0});
        fabric.send(std::move(m));
      }
    });
  }
  engine.run();
  for (const auto& kinds : seen) {
    ASSERT_EQ(kinds.size(), 20u);
    EXPECT_TRUE(std::is_sorted(kinds.begin(), kinds.end()));
  }
}

TEST(FabricEdge, SelfSendOnSameNodeWorks) {
  sim::Engine engine;
  FabricConfig cfg;
  cfg.num_nodes = 1;
  cfg.ports_per_node = 2;
  Fabric fabric(engine, cfg);
  bool got = false;
  engine.spawn("both", [&] {
    Message m;
    m.src_node = 0;
    m.src_port = 0;
    m.dst_node = 0;
    m.dst_port = 0;  // to its own port
    fabric.send(std::move(m));
    (void)fabric.endpoint(0, 0).recv();
    got = true;
  });
  engine.run();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace ppm::net
