#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mp/comm.hpp"
#include "util/error.hpp"

namespace ppm::mp {
namespace {

using cluster::Machine;
using cluster::Place;

/// Run an SPMD rank program on a fresh machine.
void run_ranks(int nodes, int cores,
               const std::function<void(Comm&)>& rank_main) {
  Machine machine({.nodes = nodes, .cores_per_node = cores});
  World world(machine);
  machine.run_per_core([&](const Place& place) {
    Comm comm = world.comm_at(place);
    rank_main(comm);
  });
}

TEST(MpP2p, SendRecvRoundTrip) {
  std::vector<double> got;
  run_ranks(2, 1, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_vec<double>(1, 5, std::vector<double>{1.5, 2.5});
    } else {
      got = comm.recv_vec<double>(0, 5);
    }
  });
  EXPECT_EQ(got, (std::vector<double>{1.5, 2.5}));
}

TEST(MpP2p, TagSelectiveDelivery) {
  std::vector<int> by_tag(2, 0);
  run_ranks(2, 1, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, /*tag=*/1, 111);
      comm.send_value<int>(1, /*tag=*/0, 222);
    } else {
      // Receive out of arrival order: tag 0 first.
      by_tag[0] = comm.recv_value<int>(0, 0);
      by_tag[1] = comm.recv_value<int>(0, 1);
    }
  });
  EXPECT_EQ(by_tag[0], 222);
  EXPECT_EQ(by_tag[1], 111);
}

TEST(MpP2p, AnySourceWildcardReportsStatus) {
  int source_seen = -1;
  size_t bytes_seen = 0;
  run_ranks(3, 1, [&](Comm& comm) {
    if (comm.rank() == 2) {
      Status st;
      (void)comm.recv(kAnySource, kAnyTag, &st);
      source_seen = st.source;
      bytes_seen = st.bytes;
    } else if (comm.rank() == 1) {
      comm.send_value<int64_t>(2, 9, 42);
    }
    // rank 0 idles
  });
  EXPECT_EQ(source_seen, 1);
  EXPECT_EQ(bytes_seen, sizeof(uint64_t) + sizeof(int64_t));
}

TEST(MpP2p, AnyTagWildcard) {
  int got = 0;
  run_ranks(2, 1, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 123, 7);
    } else {
      Status st;
      got = comm.recv_value<int>(0, kAnyTag, &st);
      EXPECT_EQ(st.tag, 123);
    }
  });
  EXPECT_EQ(got, 7);
}

TEST(MpP2p, MessagesFromSameSenderArriveInOrder) {
  std::vector<int> got;
  run_ranks(2, 1, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i) comm.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < 20; ++i) got.push_back(comm.recv_value<int>(0, 3));
    }
  });
  std::vector<int> expect(20);
  for (int i = 0; i < 20; ++i) expect[static_cast<size_t>(i)] = i;
  EXPECT_EQ(got, expect);
}

TEST(MpP2p, IntraNodeRanksCommunicate) {
  int got = 0;
  run_ranks(1, 4, [&](Comm& comm) {
    if (comm.rank() == 3) {
      comm.send_value<int>(0, 0, 99);
    } else if (comm.rank() == 0) {
      got = comm.recv_value<int>(3, 0);
    }
  });
  EXPECT_EQ(got, 99);
}

TEST(MpP2p, SymmetricExchangeDoesNotDeadlock) {
  // Eager buffered sends: both ranks send before receiving.
  std::vector<int> got(2, 0);
  run_ranks(2, 1, [&](Comm& comm) {
    const int peer = 1 - comm.rank();
    comm.send_value<int>(peer, 0, comm.rank() + 10);
    got[static_cast<size_t>(comm.rank())] = comm.recv_value<int>(peer, 0);
  });
  EXPECT_EQ(got[0], 11);
  EXPECT_EQ(got[1], 10);
}

TEST(MpP2p, IsendIrecvWaitall) {
  std::vector<int> got;
  run_ranks(2, 1, [&](Comm& comm) {
    if (comm.rank() == 0) {
      ByteWriter w;
      w.put<int>(5);
      Request s = comm.isend(1, 0, std::move(w).take());
      (void)comm.wait(s);
    } else {
      Request r = comm.irecv(0, 0);
      // Overlap window: do "compute" before completing the receive.
      comm.send_value<int>(1, 7, 0);  // self-message exercising the queue
      (void)comm.recv_value<int>(1, 7);
      const Bytes payload = comm.wait(r);  // keep alive: ByteReader is a view
      ByteReader rd(payload);
      got.push_back(rd.get<int>());
    }
  });
  EXPECT_EQ(got, std::vector<int>{5});
}

TEST(MpP2p, IprobeSeesPendingMessage) {
  bool before = true, after = false;
  run_ranks(2, 1, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 4, 1);
      comm.barrier();
    } else {
      comm.barrier();  // after the barrier the message has been delivered
      Status st;
      after = comm.iprobe(0, 4, &st);
      before = comm.iprobe(0, 99);
      (void)comm.recv(0, 4);
    }
  });
  EXPECT_TRUE(after);
  EXPECT_FALSE(before);
}

TEST(MpP2p, RejectsBadArguments) {
  run_ranks(2, 1, [&](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send(7, 0, Bytes{}), Error);
      EXPECT_THROW(comm.send(1, -3, Bytes{}), Error);
      EXPECT_THROW(comm.send(1, kMaxUserTag + 1, Bytes{}), Error);
      EXPECT_THROW((void)comm.recv(99, 0), Error);
    }
  });
}

TEST(MpP2p, WaitOnInactiveRequestThrows) {
  run_ranks(1, 1, [&](Comm& comm) {
    Request r;
    EXPECT_THROW((void)comm.wait(r), Error);
  });
}

TEST(MpP2p, LargePayloadRoundTrip) {
  size_t got_size = 0;
  uint64_t got_sum = 0;
  run_ranks(2, 1, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<uint32_t> big(100'000);
      for (size_t i = 0; i < big.size(); ++i) {
        big[i] = static_cast<uint32_t>(i);
      }
      comm.send_vec<uint32_t>(1, 0, big);
    } else {
      auto v = comm.recv_vec<uint32_t>(0, 0);
      got_size = v.size();
      for (uint32_t x : v) got_sum += x;
    }
  });
  EXPECT_EQ(got_size, 100'000u);
  EXPECT_EQ(got_sum, 99'999ull * 100'000ull / 2);
}

}  // namespace
}  // namespace ppm::mp
