// The read-engine fast path: a phase whose working set is cached must
// never re-enter the runtime's slow remote path, the bulk read_n/set_n/
// add_n spans and batched fetch lists are pure performance knobs
// (bit-identical committed state), and the strided detector extends
// lookahead beyond adjacent-block streams.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

PpmConfig cfg(int nodes, int cores) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = cores;
  return c;
}

uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// One VP on node 0 sweeps the whole array `sweeps` times in one phase.
// Returns the run counters plus the number of reads that were remote for
// node 0 (counted in-program via owner()).
struct SweepStats {
  RunResult r;
  uint64_t remote_per_sweep = 0;
};

SweepStats run_sweeps(Distribution dist, int sweeps) {
  constexpr uint64_t kN = 4096;
  PpmConfig c = cfg(2, 1);
  SweepStats out;
  out.r = run(c, [&](Env& env) {
    auto a = env.global_array<double>(kN, dist);
    auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    vps.global_phase([&](Vp&) {
      double acc = 0;
      for (int s = 0; s < sweeps; ++s) {
        for (uint64_t i = 0; i < kN; ++i) acc += a.get(i);
      }
      for (uint64_t i = 0; i < kN; ++i) {
        if (a.owner(i) != 0) ++out.remote_per_sweep;
      }
      EXPECT_EQ(acc, 0.0);  // zero-initialized
    });
  });
  return out;
}

// A phase re-reading an already-fetched working set performs zero
// additional slow-path reads: every extra sweep is served entirely by
// the handle-inline cache probe, across all three distributions.
TEST(ReadPath, FullyCachedSweepAddsZeroSlowPathReads) {
  for (const auto dist :
       {Distribution::kBlock, Distribution::kCyclic, Distribution::kAdaptive}) {
    const SweepStats one = run_sweeps(dist, 1);
    const SweepStats three = run_sweeps(dist, 3);
    ASSERT_GT(one.remote_per_sweep, 0u);
    // The warm sweep's misses are the only slow-path entries there are.
    EXPECT_GT(one.r.slow_path_reads, 0u);
    EXPECT_EQ(three.r.slow_path_reads, one.r.slow_path_reads)
        << "dist=" << static_cast<int>(dist);
    // Every read of the two extra sweeps was served from the cache.
    EXPECT_EQ(three.r.remote_reads_served_from_cache -
                  one.r.remote_reads_served_from_cache,
              2 * one.remote_per_sweep)
        << "dist=" << static_cast<int>(dist);
  }
}

// Mixed bulk workload: set_n/add_n/read_n spans crossing chunk
// boundaries plus scattered per-element writes. Returns the committed
// contents; must be bit-identical with the bulk path on or off.
struct Committed {
  std::vector<double> vals;
  RunResult r;
};

Committed run_bulk_workload(bool bulk, bool batch) {
  constexpr uint64_t kN = 1024;
  constexpr uint64_t kK = 8;  // VPs per node
  PpmConfig c = cfg(4, 2);
  c.runtime.bulk_access = bulk;
  c.runtime.batch_fetches = batch;
  c.runtime.read_block_bytes = 256;  // 32 doubles per block
  Committed out;
  out.r = run(c, [&](Env& env) {
    auto vals = env.global_array<double>(kN);
    const auto n = static_cast<uint64_t>(env.node_id());
    auto vps = env.ppm_do(kK);
    // Each VP owns a disjoint 16-element run somewhere in the array
    // (possibly remote, possibly straddling a chunk boundary).
    vps.global_phase([&](Vp& vp) {
      const uint64_t first = (vp.global_rank() * 16) % (kN - 16);
      std::vector<double> v(16);
      for (uint64_t j = 0; j < 16; ++j) {
        v[j] = static_cast<double>(first + j) * 0.5;
      }
      vals.set_n(first, 16, v.data());
    });
    // Scattered bulk accumulates on top, plus read_n round trips.
    vps.global_phase([&](Vp& vp) {
      const uint64_t first = mix(n * kK + vp.node_rank()) % (kN - 32);
      std::vector<double> got(32);
      vals.read_n(first, 32, got.data());
      for (auto& g : got) g = g * 0.25 + 1.0;
      vals.add_n(first, 32, got.data());
    });
    auto one = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    one.global_phase([&](Vp&) {
      std::vector<uint64_t> idx(kN);
      for (uint64_t i = 0; i < kN; ++i) idx[i] = i;
      out.vals = vals.gather(idx);
    });
  });
  return out;
}

TEST(ReadPath, BulkSpansBitIdenticalToElementwise) {
  const Committed on = run_bulk_workload(/*bulk=*/true, /*batch=*/true);
  const Committed off = run_bulk_workload(/*bulk=*/false, /*batch=*/true);
  ASSERT_EQ(on.vals.size(), off.vals.size());
  EXPECT_EQ(std::memcmp(on.vals.data(), off.vals.data(),
                        on.vals.size() * sizeof(double)),
            0);
  // The span path ships contiguous runs as single range entries, so wire
  // bytes may only shrink.
  EXPECT_LE(on.r.network_bytes, off.r.network_bytes);
}

TEST(ReadPath, BatchedFetchListsPreserveResults) {
  const Committed on = run_bulk_workload(/*bulk=*/true, /*batch=*/true);
  const Committed off = run_bulk_workload(/*bulk=*/true, /*batch=*/false);
  ASSERT_EQ(on.vals.size(), off.vals.size());
  EXPECT_EQ(std::memcmp(on.vals.data(), off.vals.data(),
                        on.vals.size() * sizeof(double)),
            0);
  // Coalesced lists replace per-block requests: never more messages or
  // bytes than the unbatched wire.
  EXPECT_LE(on.r.network_messages, off.r.network_messages);
  EXPECT_LE(on.r.network_bytes, off.r.network_bytes);
}

// prefetch_range announces a remote band; the demanded blocks must be
// counted as prefetch hits (the hint was not wasted) and values must be
// the committed ones.
TEST(ReadPath, PrefetchRangeCoversDemandedBand) {
  constexpr uint64_t kN = 4096;
  PpmConfig c = cfg(2, 1);
  c.runtime.prefetch_lookahead_blocks = 0;  // isolate the explicit hint
  c.runtime.strided_prefetch = false;
  const RunResult r = run(c, [&](Env& env) {
    auto a = env.global_array<double>(kN);
    auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
    vps.global_phase([&](Vp&) {
      // Remote band of 512 doubles = 2 cache blocks (2048 B default).
      a.prefetch_range(kN / 2, kN / 2 + 512);
      double acc = 0;
      for (uint64_t i = kN / 2; i < kN / 2 + 512; ++i) acc += a.get(i);
      EXPECT_EQ(acc, 0.0);
    });
  });
  EXPECT_EQ(r.prefetch_issued, 2u);
  EXPECT_EQ(r.prefetch_hits, 2u);
  EXPECT_EQ(r.remote_blocks_fetched, 2u);
}

// A constant-stride walk two blocks apart: the adjacent-stream detector
// cannot see it, the strided detector must.
TEST(ReadPath, StridedDetectorExtendsLookahead) {
  constexpr uint64_t kN = 1 << 15;
  auto walk = [&](bool strided) {
    PpmConfig c = cfg(2, 1);
    c.runtime.strided_prefetch = strided;
    const RunResult r = run(c, [&](Env& env) {
      auto a = env.global_array<double>(kN);
      auto vps = env.ppm_do(env.node_id() == 0 ? 1 : 0);
      vps.global_phase([&](Vp&) {
        double acc = 0;
        // Stride of 512 doubles = 2 blocks: every read is a fresh block,
        // never the forward-adjacent one.
        for (uint64_t i = kN / 2; i < kN; i += 512) acc += a.get(i);
        EXPECT_EQ(acc, 0.0);
      });
    });
    return r;
  };
  const RunResult on = walk(true);
  const RunResult off = walk(false);
  EXPECT_GT(on.prefetch_issued, 0u);
  EXPECT_GT(on.prefetch_hits, 0u);
  EXPECT_EQ(off.prefetch_issued, 0u);
  // The walk itself reads the same blocks either way.
  EXPECT_EQ(on.remote_blocks_fetched, off.remote_blocks_fetched);
}

}  // namespace
}  // namespace ppm
