// ppm::stress self-tests: the differential harness must (a) pass clean on
// the CI smoke seeds, deterministically, (b) catch a deliberately planted
// commit-ordering bug with a shrunk, replayable repro, and (c) be
// bit-deterministic even with fabric fault injection enabled.
#include <gtest/gtest.h>

#include "core/ppm.hpp"
#include "stress/golden.hpp"
#include "stress/program.hpp"
#include "stress/runner.hpp"

namespace ppm::stress {
namespace {

constexpr uint64_t kSmokeSeeds[] = {1, 2, 3, 4, 5, 6};
constexpr int kConfigs = 6;

TEST(StressHarness, SmokeSeedsAllClean) {
  for (const uint64_t seed : kSmokeSeeds) {
    const auto spec = generate_program(seed);
    const auto cfgs = sample_configs(seed, kConfigs);
    const auto v = run_differential(spec, cfgs);
    EXPECT_TRUE(v.ok) << "seed " << seed << " config " << v.config_index
                      << " (" << v.config_name << "): " << v.detail;
  }
}

TEST(StressHarness, VerdictsAreDeterministic) {
  for (const uint64_t seed : {uint64_t{1}, uint64_t{5}}) {
    const auto spec1 = generate_program(seed);
    const auto spec2 = generate_program(seed);
    EXPECT_EQ(spec1.dump(), spec2.dump());
    const auto cfgs = sample_configs(seed, kConfigs);
    const auto snap1 = run_under_config(spec1, cfgs.back());
    const auto snap2 = run_under_config(spec2, cfgs.back());
    EXPECT_TRUE(snap1 == snap2) << "re-running seed " << seed
                                << " under the same config diverged";
  }
}

TEST(StressHarness, GeneratorCoversAllDistributionsAndSchedules) {
  bool block = false, cyclic = false, adaptive = false;
  for (const uint64_t seed : kSmokeSeeds) {
    const auto spec = generate_program(seed);
    for (const ArraySpec& a : spec.arrays) {
      if (!a.global) continue;
      block |= a.dist == Distribution::kBlock;
      cyclic |= a.dist == Distribution::kCyclic;
      adaptive |= a.dist == Distribution::kAdaptive;
    }
  }
  EXPECT_TRUE(block && cyclic && adaptive);

  bool stat = false, dyn = false, faults = false, multi_node = false;
  for (const uint64_t seed : kSmokeSeeds) {
    for (const StressConfig& c : sample_configs(seed, kConfigs)) {
      stat |= c.runtime.schedule == SchedulePolicy::kStatic;
      dyn |= c.runtime.schedule == SchedulePolicy::kDynamic;
      faults |= c.machine.faults.delay_jitter;
      multi_node |= c.machine.nodes > 1;
    }
  }
  EXPECT_TRUE(stat);
  EXPECT_TRUE(dyn);
  EXPECT_TRUE(faults);
  EXPECT_TRUE(multi_node);
}

TEST(StressHarness, FaultInjectionIsDeterministic) {
  StressConfig cfg;
  cfg.machine.nodes = 2;
  cfg.machine.cores_per_node = 2;
  cfg.machine.faults.delay_jitter = true;
  cfg.machine.faults.seed = 42;
  cfg.machine.faults.delay_probability = 0.5;
  cfg.machine.faults.max_extra_delay_ns = 200'000;
  cfg.runtime.validate_phases = true;
  cfg.name = "hand-2n2c-faults";
  const auto spec = generate_program(7);
  const auto snap1 = run_under_config(spec, cfg);
  const auto snap2 = run_under_config(spec, cfg);
  EXPECT_TRUE(snap1 == snap2)
      << "fault-injected run is not deterministic across repeats";
  // And the faulted run still commits exactly the golden state.
  EXPECT_TRUE(snap1 == run_golden(spec, cfg.machine.nodes));
}

// RAII guard for the deliberate-fault hook baked into commit ordering.
struct FlipGuard {
  FlipGuard() { detail::g_stress_flip_commit_order = true; }
  ~FlipGuard() { detail::g_stress_flip_commit_order = false; }
};

TEST(StressHarness, PlantedCommitOrderBugIsCaught) {
  FlipGuard guard;
  int caught = 0;
  for (const uint64_t seed : kSmokeSeeds) {
    const auto spec = generate_program(seed);
    if (spec.k_total == 0) continue;  // no VPs -> nothing to mis-order
    const auto cfgs = sample_configs(seed, kConfigs);
    const auto v = run_differential(spec, cfgs);
    EXPECT_FALSE(v.ok) << "seed " << seed
                       << ": planted ordering bug went undetected";
    if (v.ok) continue;
    ++caught;

    // The shrunk repro must still fail and must not grow the program.
    const auto sh = shrink(spec, cfgs, v.config_index);
    size_t orig_ops = 0, shrunk_ops = 0;
    for (const auto& ph : spec.phases) orig_ops += ph.ops.size();
    for (const auto& ph : sh.spec.phases) shrunk_ops += ph.ops.size();
    EXPECT_LE(sh.spec.phases.size(), spec.phases.size());
    EXPECT_LE(shrunk_ops, orig_ops);
    EXPECT_LE(sh.spec.k_total, spec.k_total);
    const auto vs = run_differential(sh.spec, sh.configs);
    EXPECT_FALSE(vs.ok) << "seed " << seed << ": shrunk repro passes";
  }
  EXPECT_GT(caught, 0);
}

// RAII guard for the planted owner-side-accumulate double-apply fault.
struct DoubleApplyGuard {
  DoubleApplyGuard() { detail::g_stress_double_apply_accums = true; }
  ~DoubleApplyGuard() { detail::g_stress_double_apply_accums = false; }
};

TEST(StressHarness, PlantedDoubleApplyAccumBugIsCaught) {
  // A hand-crafted program guaranteed to route kAdd accumulates to REMOTE
  // owners (index = rank + 8 over a 16-element block array on 2 nodes):
  // applying each staged kAccum fragment twice shifts every touched
  // element by the fragment's sum, so the multi-node owner-side config
  // diverges from the single-node reference and from golden.
  DoubleApplyGuard guard;
  ProgramSpec spec;
  spec.seed = 0;
  spec.k_total = 8;
  spec.k_split_mode = 0;
  spec.arrays.push_back({true, 16, Distribution::kBlock});
  PhaseSpec p;
  p.global = true;
  p.ops.push_back(OpSpec{OpKind::kAccum, /*accum_op=*/1, 0, 0, false, 0,
                         /*ia=*/1, /*ib=*/8, 1, 0, /*va=*/1, /*vb=*/1});
  spec.phases.push_back(p);

  std::vector<StressConfig> cfgs(2);
  cfgs[0].machine.nodes = 1;
  cfgs[0].machine.cores_per_node = 1;
  cfgs[0].runtime.schedule = SchedulePolicy::kStatic;
  cfgs[0].name = "ref-1n1c";
  cfgs[1].machine.nodes = 2;
  cfgs[1].machine.cores_per_node = 2;
  cfgs[1].runtime.owner_side_accumulate = true;
  cfgs[1].runtime.validate_phases = true;
  cfgs[1].name = "hand-2n2c-owneracc";

  const auto v = run_differential(spec, cfgs);
  ASSERT_FALSE(v.ok) << "planted double-apply bug went undetected";
  EXPECT_EQ(v.config_index, 1u);

  // The shrunk repro must still fail and must not grow the program.
  const auto sh = shrink(spec, cfgs, v.config_index);
  EXPECT_LE(sh.spec.phases.size(), spec.phases.size());
  EXPECT_LE(sh.spec.k_total, spec.k_total);
  const auto vs = run_differential(sh.spec, sh.configs);
  EXPECT_FALSE(vs.ok) << "shrunk double-apply repro passes";

  // Sanity: with the fault withdrawn the same pair is clean again.
  detail::g_stress_double_apply_accums = false;
  EXPECT_TRUE(run_differential(spec, cfgs).ok);
  detail::g_stress_double_apply_accums = true;  // guard dtor resets
}

TEST(StressHarness, ReplaySubsetReproducesConfig) {
  // Config i depends only on draws before it, so sampling more configs
  // must reproduce earlier ones verbatim (the contract --replay relies on).
  const auto few = sample_configs(3, 4);
  const auto many = sample_configs(3, 12);
  for (size_t i = 0; i < few.size(); ++i) {
    EXPECT_EQ(few[i].name, many[i].name);
    EXPECT_EQ(few[i].machine.nodes, many[i].machine.nodes);
    EXPECT_EQ(few[i].machine.cores_per_node, many[i].machine.cores_per_node);
    EXPECT_EQ(few[i].runtime.schedule, many[i].runtime.schedule);
  }
}

TEST(StressHarness, GoldenMatchesHandComputedProgram) {
  // A tiny hand-auditable program: 4 VPs over one 8-element array,
  // phase 1 sets a[rank] = 2*rank+1, phase 2 adds 10 at (rank+3)%8.
  ProgramSpec spec;
  spec.seed = 0;
  spec.k_total = 4;
  spec.k_split_mode = 0;
  spec.arrays.push_back({true, 8, Distribution::kBlock});
  PhaseSpec p1;
  p1.global = true;
  p1.ops.push_back(OpSpec{OpKind::kSet, 1, 0, 0, false, 0,
                          /*ia=*/0, 0, 1, 0, /*va=*/2, /*vb=*/1});
  spec.phases.push_back(p1);
  PhaseSpec p2;
  p2.global = true;
  p2.ops.push_back(OpSpec{OpKind::kAccum, 1, 0, 0, false, 0,
                          /*ia=*/1, /*ib=*/3, 1, 0, /*va=*/0, /*vb=*/10});
  spec.phases.push_back(p2);

  const auto g = run_golden(spec, 2);
  std::vector<uint64_t> want(8, 0);
  for (uint64_t r = 0; r < 4; ++r) want[r] = 2 * r + 1;
  for (uint64_t r = 0; r < 4; ++r) want[(r + 3) % 8] += 10;
  EXPECT_EQ(g.global_arrays[0], want);

  StressConfig cfg;
  cfg.machine.nodes = 2;
  cfg.machine.cores_per_node = 2;
  cfg.runtime.validate_phases = true;
  cfg.name = "hand-2n2c";
  EXPECT_TRUE(run_under_config(spec, cfg) == g);
}

}  // namespace
}  // namespace ppm::stress
