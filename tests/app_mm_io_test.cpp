// MatrixMarket import/export.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "apps/cg/csr.hpp"
#include "apps/cg/mm_io.hpp"
#include "util/error.hpp"

namespace ppm::apps::cg {
namespace {

TEST(MatrixMarket, RoundTripChimneyMatrix) {
  const CsrMatrix a = build_chimney_matrix({.nx = 4, .ny = 4, .nz = 6});
  std::stringstream buf;
  write_matrix_market(a, buf);
  const CsrMatrix b = read_matrix_market(buf);
  EXPECT_EQ(b.n, a.n);
  ASSERT_EQ(b.row_ptr, a.row_ptr);
  // Columns within a row may be reordered (reader sorts); compare as maps.
  for (uint64_t i = 0; i < a.n; ++i) {
    std::map<uint64_t, double> ra, rb;
    for (uint64_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
      ra[a.col_idx[k]] = a.values[k];
    }
    for (uint64_t k = b.row_ptr[i]; k < b.row_ptr[i + 1]; ++k) {
      rb[b.col_idx[k]] = b.values[k];
    }
    EXPECT_EQ(ra, rb) << "row " << i;
  }
}

TEST(MatrixMarket, SymmetricFilesAreExpanded) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% lower triangle only\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 3 1.5\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.n, 3u);
  EXPECT_EQ(m.nnz(), 5u);  // (1,2) mirrored from (2,1)
  // Row 0: (0,0)=2, (0,1)=-1.
  EXPECT_EQ(m.row_ptr[1] - m.row_ptr[0], 2u);
  EXPECT_DOUBLE_EQ(m.values[1], -1.0);
  EXPECT_EQ(m.col_idx[1], 1u);
}

TEST(MatrixMarket, ValuesSurviveWithFullPrecision) {
  CsrMatrix a;
  a.n = 2;
  a.row_ptr = {0, 1, 2};
  a.col_idx = {0, 1};
  a.values = {1.0 / 3.0, 2.0e-17};
  std::stringstream buf;
  write_matrix_market(a, buf);
  const CsrMatrix b = read_matrix_market(buf);
  EXPECT_EQ(b.values[0], a.values[0]);
  EXPECT_EQ(b.values[1], a.values[1]);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::stringstream in("3 3 1\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsNonSquare) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 3 1\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsOutOfBoundsEntry) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsUnsupportedFormats) {
  std::stringstream arr(
      "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market(arr), Error);
  std::stringstream cplx(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n");
  EXPECT_THROW(read_matrix_market(cplx), Error);
}

TEST(MatrixMarket, FileRoundTrip) {
  const CsrMatrix a = build_chimney_matrix({.nx = 3, .ny = 3, .nz = 4});
  const std::string path = ::testing::TempDir() + "/ppm_mm_test.mtx";
  write_matrix_market_file(a, path);
  const CsrMatrix b = read_matrix_market_file(path);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_THROW(read_matrix_market_file("/nonexistent/nowhere.mtx"), Error);
}

}  // namespace
}  // namespace ppm::apps::cg
