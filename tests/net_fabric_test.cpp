#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"

namespace ppm::net {
namespace {

Message make_msg(int src_node, int src_port, int dst_node, int dst_port,
                 size_t bytes, uint64_t kind = 0) {
  Message m;
  m.src_node = src_node;
  m.src_port = src_port;
  m.dst_node = dst_node;
  m.dst_port = dst_port;
  m.kind = kind;
  m.payload.assign(bytes, std::byte{0xab});
  return m;
}

FabricConfig two_nodes() {
  FabricConfig cfg;
  cfg.num_nodes = 2;
  cfg.ports_per_node = 2;
  return cfg;
}

TEST(Fabric, DeliversInterNodeMessage) {
  sim::Engine engine;
  Fabric fabric(engine, two_nodes());
  std::string got;
  engine.spawn("recv", [&] {
    Message m = fabric.endpoint(1, 0).recv();
    got.assign(reinterpret_cast<const char*>(m.payload.data()),
               m.payload.size());
  });
  engine.spawn("send", [&] {
    Message m;
    m.src_node = 0;
    m.dst_node = 1;
    const char* text = "hi";
    m.payload.resize(2);
    std::memcpy(m.payload.data(), text, 2);
    fabric.send(std::move(m));
  });
  engine.run();
  EXPECT_EQ(got, "hi");
}

TEST(Fabric, InterNodeTimingMatchesModel) {
  sim::Engine engine;
  FabricConfig cfg = two_nodes();
  cfg.network = {.latency_ns = 1000,
                 .bytes_per_ns = 1.0,
                 .send_overhead_ns = 100,
                 .recv_overhead_ns = 50};
  Fabric fabric(engine, cfg);
  int64_t recv_at = -1;
  engine.spawn("recv", [&] {
    (void)fabric.endpoint(1, 0).recv();
    recv_at = engine.now_ns();
  });
  engine.spawn("send", [&] {
    fabric.send(make_msg(0, 0, 1, 0, /*bytes=*/200));
  });
  engine.run();
  // send_overhead 100 + latency 1000 + 200B @ 1B/ns + recv_overhead 50.
  EXPECT_EQ(recv_at, 100 + 1000 + 200 + 50);
  EXPECT_EQ(fabric.uncontended_network_time_ns(200), recv_at);
}

TEST(Fabric, IntraNodeIsCheaperThanNetwork) {
  sim::Engine engine;
  Fabric fabric(engine, two_nodes());
  int64_t intra_at = -1, inter_at = -1;
  engine.spawn("recv-intra", [&] {
    (void)fabric.endpoint(0, 1).recv();
    intra_at = engine.now_ns();
  });
  engine.spawn("recv-inter", [&] {
    (void)fabric.endpoint(1, 1).recv();
    inter_at = engine.now_ns();
  });
  engine.spawn("send", [&] {
    fabric.send(make_msg(0, 0, 0, 1, 512));
    fabric.send(make_msg(0, 0, 1, 1, 512));
  });
  engine.run();
  EXPECT_GT(intra_at, 0);
  EXPECT_LT(intra_at, inter_at);
}

TEST(Fabric, EgressSerializesConcurrentSenders) {
  sim::Engine engine;
  FabricConfig cfg = two_nodes();
  cfg.network = {.latency_ns = 0,
                 .bytes_per_ns = 1.0,
                 .send_overhead_ns = 0,
                 .recv_overhead_ns = 0};
  Fabric fabric(engine, cfg);
  std::vector<int64_t> arrivals;
  engine.spawn("recv", [&] {
    for (int i = 0; i < 2; ++i) {
      (void)fabric.endpoint(1, 0).recv();
      arrivals.push_back(engine.now_ns());
    }
  });
  // Two cores of node 0 send 1000B each at t=0: the shared NIC must
  // serialize, so the second message lands ~1000ns after the first.
  engine.spawn("core0", [&] { fabric.send(make_msg(0, 0, 1, 0, 1000)); });
  engine.spawn("core1", [&] { fabric.send(make_msg(0, 1, 1, 0, 1000)); });
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 1000);
  EXPECT_EQ(arrivals[1], 2000);
}

TEST(Fabric, IngressSerializesConcurrentArrivals) {
  sim::Engine engine;
  FabricConfig cfg;
  cfg.num_nodes = 3;
  cfg.ports_per_node = 1;
  cfg.network = {.latency_ns = 0,
                 .bytes_per_ns = 1.0,
                 .send_overhead_ns = 0,
                 .recv_overhead_ns = 0};
  Fabric fabric(engine, cfg);
  std::vector<int64_t> arrivals;
  engine.spawn("recv", [&] {
    for (int i = 0; i < 2; ++i) {
      (void)fabric.endpoint(2, 0).recv();
      arrivals.push_back(engine.now_ns());
    }
  });
  engine.spawn("sender-a", [&] { fabric.send(make_msg(0, 0, 2, 0, 1000)); });
  engine.spawn("sender-b", [&] { fabric.send(make_msg(1, 0, 2, 0, 1000)); });
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 1000);
  EXPECT_EQ(arrivals[1], 2000);  // destination NIC absorbed them in series
}

TEST(Fabric, BundlingBeatsFineGrainedMessages) {
  // The core premise of the PPM runtime: one bundled message is far cheaper
  // than many fine-grained ones of the same total size.
  sim::Engine engine;
  Fabric fabric(engine, two_nodes());
  int64_t fine_done = -1, bundled_done = -1;
  constexpr int kCount = 100;
  constexpr size_t kItem = 16;

  engine.spawn("recv", [&] {
    for (int i = 0; i < kCount; ++i) (void)fabric.endpoint(1, 0).recv();
    fine_done = engine.now_ns();
    (void)fabric.endpoint(1, 0).recv();
    bundled_done = engine.now_ns() - fine_done;
  });
  engine.spawn("send", [&] {
    for (int i = 0; i < kCount; ++i) {
      fabric.send(make_msg(0, 0, 1, 0, kItem));
    }
    fabric.send(make_msg(0, 0, 1, 0, kItem * kCount));
  });
  engine.run();
  EXPECT_GT(fine_done, 20 * bundled_done);
}

TEST(Fabric, StatsCountMessagesAndBytes) {
  sim::Engine engine;
  Fabric fabric(engine, two_nodes());
  engine.spawn("recv-remote", [&] { (void)fabric.endpoint(1, 0).recv(); });
  engine.spawn("recv-local", [&] { (void)fabric.endpoint(0, 1).recv(); });
  engine.spawn("send", [&] {
    fabric.send(make_msg(0, 0, 1, 0, 100));
    fabric.send(make_msg(0, 0, 0, 1, 40));
  });
  engine.run();
  EXPECT_EQ(fabric.stats().inter_messages.value(), 1u);
  EXPECT_EQ(fabric.stats().inter_bytes.value(), 100u);
  EXPECT_EQ(fabric.stats().intra_messages.value(), 1u);
  EXPECT_EQ(fabric.stats().intra_bytes.value(), 40u);
}

TEST(Fabric, KindFieldRoundTrips) {
  sim::Engine engine;
  Fabric fabric(engine, two_nodes());
  uint64_t kind = 0;
  engine.spawn("recv", [&] { kind = fabric.endpoint(1, 0).recv().kind; });
  engine.spawn("send", [&] {
    fabric.send(make_msg(0, 0, 1, 0, 8, /*kind=*/0xfeedface));
  });
  engine.run();
  EXPECT_EQ(kind, 0xfeedfaceu);
}

TEST(Fabric, RejectsBadAddresses) {
  sim::Engine engine;
  Fabric fabric(engine, two_nodes());
  engine.spawn("send", [&] {
    EXPECT_THROW(fabric.send(make_msg(0, 0, 7, 0, 8)), Error);
    EXPECT_THROW(fabric.send(make_msg(0, 0, 1, 9, 8)), Error);
  });
  engine.run();
  EXPECT_THROW(fabric.endpoint(-1, 0), Error);
}

TEST(Fabric, SendOutsideFiberRejected) {
  sim::Engine engine;
  Fabric fabric(engine, two_nodes());
  EXPECT_THROW(fabric.send(make_msg(0, 0, 1, 0, 8)), Error);
}

TEST(Fabric, TryRecvNonBlocking) {
  sim::Engine engine;
  Fabric fabric(engine, two_nodes());
  bool empty_at_first = false;
  bool got_later = false;
  engine.spawn("recv", [&] {
    Message m;
    empty_at_first = !fabric.endpoint(1, 0).try_recv(&m);
    engine.sleep_for_ns(1'000'000);
    got_later = fabric.endpoint(1, 0).try_recv(&m);
  });
  engine.spawn("send", [&] { fabric.send(make_msg(0, 0, 1, 0, 8)); });
  engine.run();
  EXPECT_TRUE(empty_at_first);
  EXPECT_TRUE(got_later);
}

}  // namespace
}  // namespace ppm::net
