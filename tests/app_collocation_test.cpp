// Correctness of the multi-scale collocation matrix generator: serial
// structure properties, and bit-identical agreement of the PPM and MPI
// implementations with the serial reference.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/collocation/collocation.hpp"
#include "apps/collocation/matgen_mpi.hpp"
#include "apps/collocation/matgen_ppm.hpp"

namespace ppm::apps::collocation {
namespace {

const CollocationProblem kSmall{
    .levels = 4, .base = 8, .refine_terms = 5, .combo_terms = 4,
    .bandwidth = 2, .quadrature_points = 16, .seed = 42};

TEST(CollocationProblem, LevelGeometry) {
  EXPECT_EQ(kSmall.level_size(0), 8u);
  EXPECT_EQ(kSmall.level_size(3), 64u);
  EXPECT_EQ(kSmall.level_offset(0), 0u);
  EXPECT_EQ(kSmall.level_offset(1), 8u);
  EXPECT_EQ(kSmall.level_offset(4), 120u);
  EXPECT_EQ(kSmall.total_points(), 120u);
  EXPECT_EQ(kSmall.level_of(0), 0);
  EXPECT_EQ(kSmall.level_of(7), 0);
  EXPECT_EQ(kSmall.level_of(8), 1);
  EXPECT_EQ(kSmall.level_of(119), 3);
  EXPECT_THROW(kSmall.level_of(120), Error);
}

TEST(Collocation, IntegrationIsDeterministicAndFinite) {
  const double a = integrate_basis(kSmall, 2, 5);
  const double b = integrate_basis(kSmall, 2, 5);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_NE(a, 0.0);
}

TEST(Collocation, RefinementRefsPointToCoarserLevels) {
  for (int l = 1; l < kSmall.levels; ++l) {
    for (uint64_t i = 0; i < kSmall.level_size(l); i += 7) {
      for (const TableRef& ref : table_refinement_refs(kSmall, l, i)) {
        EXPECT_LT(ref.level, l);
        EXPECT_LT(ref.index, kSmall.level_size(ref.level));
        EXPECT_GE(ref.weight, -0.5);
        EXPECT_LT(ref.weight, 0.5);
      }
    }
  }
  EXPECT_TRUE(table_refinement_refs(kSmall, 0, 0).empty());
}

TEST(Collocation, EntryRefsStayWithinRowLevel) {
  const uint64_t row = kSmall.level_offset(2) + 3;  // a level-2 point
  for (const TableRef& ref : entry_refs(kSmall, row, 5)) {
    EXPECT_LE(ref.level, 2);
    EXPECT_LT(ref.index, kSmall.level_size(ref.level));
  }
}

TEST(Collocation, NonzeroPatternIsHierarchicalAndSorted) {
  for (uint64_t row : {0ULL, 9ULL, 40ULL, 119ULL}) {
    const auto cols = columns_of_row(kSmall, row);
    EXPECT_FALSE(cols.empty());
    EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
    for (uint64_t c : cols) EXPECT_LT(c, kSmall.total_points());
    // The pattern touches every level at least once for interior rows.
  }
}

TEST(Collocation, SerialMatrixShape) {
  const CsrMatrix m = generate_matrix_serial(kSmall);
  EXPECT_EQ(m.n, kSmall.total_points());
  EXPECT_EQ(m.row_ptr.size(), kSmall.total_points() + 1);
  EXPECT_GT(m.nnz(), kSmall.total_points());  // multiple entries per row
  for (double v : m.values) EXPECT_TRUE(std::isfinite(v));
}

struct Shape {
  int nodes;
  int cores;
};

class DistributedMatgen : public ::testing::TestWithParam<Shape> {};

TEST_P(DistributedMatgen, PpmMatchesSerialBitForBit) {
  const CsrMatrix serial = generate_matrix_serial(kSmall);
  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  std::vector<PpmMatgenOutput> outputs(static_cast<size_t>(GetParam().nodes));
  run(cfg, [&](Env& env) {
    outputs[static_cast<size_t>(env.node_id())] =
        generate_matrix_ppm(env, kSmall);
  });
  for (const auto& out : outputs) {
    for (uint64_t row = out.row_begin; row < out.row_end; ++row) {
      const uint64_t lr = row - out.row_begin;
      const uint64_t sk = serial.row_ptr[row];
      const uint64_t lk = out.local_rows.row_ptr[lr];
      ASSERT_EQ(serial.row_ptr[row + 1] - sk,
                out.local_rows.row_ptr[lr + 1] - lk)
          << "row " << row;
      for (uint64_t d = 0; d < serial.row_ptr[row + 1] - sk; ++d) {
        EXPECT_EQ(serial.col_idx[sk + d], out.local_rows.col_idx[lk + d]);
        EXPECT_EQ(serial.values[sk + d], out.local_rows.values[lk + d])
            << "row " << row << " entry " << d;
      }
    }
  }
}

TEST_P(DistributedMatgen, MpiMatchesSerialBitForBit) {
  const CsrMatrix serial = generate_matrix_serial(kSmall);
  cluster::Machine machine(
      {.nodes = GetParam().nodes, .cores_per_node = GetParam().cores});
  mp::World world(machine);
  std::vector<MpiMatgenOutput> outputs(
      static_cast<size_t>(machine.config().total_cores()));
  machine.run_per_core([&](const cluster::Place& place) {
    mp::Comm comm = world.comm_at(place);
    outputs[static_cast<size_t>(comm.rank())] =
        generate_matrix_mpi(comm, kSmall);
  });
  for (const auto& out : outputs) {
    for (uint64_t row = out.row_begin; row < out.row_end; ++row) {
      const uint64_t lr = row - out.row_begin;
      const uint64_t sk = serial.row_ptr[row];
      const uint64_t lk = out.local_rows.row_ptr[lr];
      ASSERT_EQ(serial.row_ptr[row + 1] - sk,
                out.local_rows.row_ptr[lr + 1] - lk);
      for (uint64_t d = 0; d < serial.row_ptr[row + 1] - sk; ++d) {
        EXPECT_EQ(serial.col_idx[sk + d], out.local_rows.col_idx[lk + d]);
        EXPECT_EQ(serial.values[sk + d], out.local_rows.values[lk + d]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributedMatgen,
    ::testing::Values(Shape{1, 1}, Shape{2, 2}, Shape{3, 1}, Shape{4, 2}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores);
    });

}  // namespace
}  // namespace ppm::apps::collocation
