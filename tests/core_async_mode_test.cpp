// The paper's asynchronous mode (§3.3 "Supporting both synchronous and
// asynchronous modes on different nodes"): different nodes run different
// PPM functions with different K, using node phases, then reconverge.
#include <gtest/gtest.h>

#include <vector>

#include "core/ppm.hpp"

namespace ppm {
namespace {

PpmConfig cfg(int nodes, int cores = 2) {
  PpmConfig c;
  c.machine.nodes = nodes;
  c.machine.cores_per_node = cores;
  return c;
}

TEST(AsyncMode, DifferentFunctionsPerNode) {
  // "the PPM function that is invoked can be different on different nodes
  // (this can easily been done by using function pointers)" — here,
  // different lambdas chosen per node id.
  std::vector<int64_t> results(3, 0);
  run(cfg(3), [&](Env& env) {
    auto acc = env.node_array<int64_t>(1);
    auto vps = env.ppm_do_async(50 + 10 * env.node_id());

    const std::function<void(Vp&)> summer = [&](Vp&) { acc.add(0, 1); };
    const std::function<void(Vp&)> doubler = [&](Vp&) { acc.add(0, 2); };
    const std::function<void(Vp&)> tripler = [&](Vp&) { acc.add(0, 3); };
    const std::function<void(Vp&)>* table[3] = {&summer, &doubler,
                                                &tripler};
    vps.node_phase(*table[env.node_id()]);
    results[static_cast<size_t>(env.node_id())] = acc.span()[0];
  });
  EXPECT_EQ(results[0], 50 * 1);
  EXPECT_EQ(results[1], 60 * 2);
  EXPECT_EQ(results[2], 70 * 3);
}

TEST(AsyncMode, NodesProgressIndependentlyThenReconverge) {
  // Node i runs i+1 rounds of node phases (no cross-node sync), then all
  // meet at a global phase and exchange results.
  std::vector<int64_t> seen;
  run(cfg(4), [&](Env& env) {
    auto partial = env.node_array<int64_t>(1);
    auto vps = env.ppm_do_async(16);
    for (int round = 0; round <= env.node_id(); ++round) {
      vps.node_phase([&](Vp&) { partial.add(0, 1); });
    }
    // Reconverge: publish the per-node totals into a global array.
    auto totals = env.global_array<int64_t>(4);
    auto sync = env.ppm_do(1);
    sync.global_phase([&](Vp&) {
      totals.set(static_cast<uint64_t>(env.node_id()), partial.get(0));
    });
    sync.global_phase([&](Vp&) {
      if (env.node_id() == 0) {
        for (uint64_t v = 0; v < 4; ++v) seen.push_back(totals.get(v));
      }
    });
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{16, 32, 48, 64}));
}

TEST(AsyncMode, AsyncGlobalReadsSeeLatestCommitted) {
  // Reads of global arrays outside global phases ("async" reads) observe
  // the owner's most recently committed values.
  std::vector<double> observed;
  run(cfg(2, 1), [&](Env& env) {
    auto a = env.global_array<double>(2);
    if (env.node_id() == 1) a.set(1, 3.5);  // immediate local write
    env.barrier();
    if (env.node_id() == 0) {
      observed.push_back(a.get(1));  // remote async read
    }
    env.barrier();
  });
  EXPECT_EQ(observed, std::vector<double>{3.5});
}

TEST(AsyncMode, MixedNodeAndGlobalPhasesInterleave) {
  int64_t final_value = -1;
  run(cfg(2, 2), [&](Env& env) {
    auto local = env.node_array<int64_t>(4);
    auto global = env.global_array<int64_t>(8);
    auto vps = env.ppm_do(4);
    // Node phase: prepare local data.
    vps.node_phase([&](Vp& vp) {
      local.set(vp.node_rank(),
                static_cast<int64_t>(vp.node_rank() + 1) *
                    (env.node_id() + 1));
    });
    // Global phase: publish node results.
    vps.global_phase([&](Vp& vp) {
      global.set(vp.global_rank(), local.get(vp.node_rank()));
    });
    // Node phase again: local postprocessing of committed global data.
    vps.node_phase([&](Vp& vp) {
      local.set(vp.node_rank(), global.get(vp.global_rank()) * 10);
    });
    vps.global_phase([&](Vp& vp) {
      if (env.node_id() == 1 && vp.node_rank() == 3) {
        final_value = local.get(3);
      }
    });
  });
  // Node 1, vp 3: local = (3+1)*(1+1) = 8; published; *10 = 80.
  EXPECT_EQ(final_value, 80);
}

}  // namespace
}  // namespace ppm
