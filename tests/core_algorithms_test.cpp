// PPM-written utility algorithms (parallel prefix, reductions, fill, dot).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/algorithms.hpp"
#include "core/ppm.hpp"

namespace ppm {
namespace {

struct Shape {
  int nodes;
  int cores;
  uint64_t n;
};

class Algorithms : public ::testing::TestWithParam<Shape> {
 protected:
  PpmConfig config() const {
    PpmConfig c;
    c.machine.nodes = GetParam().nodes;
    c.machine.cores_per_node = GetParam().cores;
    return c;
  }
};

TEST_P(Algorithms, PrefixSumMatchesSequentialScan) {
  const uint64_t n = GetParam().n;
  std::vector<int64_t> got;
  run(config(), [&](Env& env) {
    auto x = env.global_array<int64_t>(n);
    fill(env, x, [](uint64_t i) { return static_cast<int64_t>(i % 7 + 1); });
    prefix_sum(env, x);
    if (env.node_id() == 0) {
      auto vps = env.ppm_do(1);
      vps.global_phase([&](Vp& vp) {
        (void)vp;
        for (uint64_t i = 0; i < n; ++i) got.push_back(x.get(i));
      });
    } else {
      auto vps = env.ppm_do(0);
      vps.global_phase([](Vp&) {});
    }
  });
  std::vector<int64_t> expect(n);
  for (uint64_t i = 0; i < n; ++i) expect[i] = static_cast<int64_t>(i % 7 + 1);
  std::partial_sum(expect.begin(), expect.end(), expect.begin());
  EXPECT_EQ(got, expect);
}

TEST_P(Algorithms, ReduceArraySum) {
  const uint64_t n = GetParam().n;
  std::vector<int64_t> results;
  run(config(), [&](Env& env) {
    auto x = env.global_array<int64_t>(n);
    fill(env, x, [](uint64_t i) { return static_cast<int64_t>(i); });
    results.push_back(
        reduce_array(env, x, int64_t{0},
                     [](int64_t a, int64_t b) { return a + b; }));
  });
  const auto expect = static_cast<int64_t>(n * (n - 1) / 2);
  ASSERT_EQ(results.size(), static_cast<size_t>(GetParam().nodes));
  for (int64_t r : results) EXPECT_EQ(r, expect);
}

TEST_P(Algorithms, ReduceArrayMax) {
  const uint64_t n = GetParam().n;
  std::vector<int64_t> results;
  run(config(), [&](Env& env) {
    auto x = env.global_array<int64_t>(n);
    fill(env, x, [n](uint64_t i) {
      return static_cast<int64_t>((i * 37) % n);  // max is n-1 somewhere
    });
    results.push_back(reduce_array(
        env, x, std::numeric_limits<int64_t>::min(),
        [](int64_t a, int64_t b) { return std::max(a, b); }));
  });
  for (int64_t r : results) {
    int64_t expect = 0;
    for (uint64_t i = 0; i < n; ++i) {
      expect = std::max(expect, static_cast<int64_t>((i * 37) % n));
    }
    EXPECT_EQ(r, expect);
  }
}

TEST_P(Algorithms, DotProduct) {
  const uint64_t n = GetParam().n;
  std::vector<double> results;
  run(config(), [&](Env& env) {
    auto a = env.global_array<double>(n);
    auto b = env.global_array<double>(n);
    fill(env, a, [](uint64_t i) { return static_cast<double>(i + 1); });
    fill(env, b, [](uint64_t) { return 2.0; });
    results.push_back(dot(env, a, b));
  });
  const double expect = static_cast<double>(n) * (n + 1);
  for (double r : results) EXPECT_DOUBLE_EQ(r, expect);
}

TEST_P(Algorithms, DotRejectsMismatchedSizes) {
  EXPECT_THROW(run(config(),
                   [&](Env& env) {
                     auto a = env.global_array<double>(GetParam().n);
                     auto b = env.global_array<double>(GetParam().n + 1);
                     (void)dot(env, a, b);
                   }),
               Error);
}

TEST_P(Algorithms, LocalizeAndPublishRoundTrip) {
  const uint64_t n = GetParam().n;
  std::vector<double> got;
  run(config(), [&](Env& env) {
    auto g = env.global_array<double>(n);
    fill(env, g, [](uint64_t i) { return static_cast<double>(i) * 1.25; });
    // Cast down to node space, transform there, cast back up.
    auto local = env.node_array<double>(g.local_end() - g.local_begin());
    localize(env, g, local);
    auto vps = env.ppm_do_async(local.size());
    vps.node_phase([&](Vp& vp) {
      local.set(vp.node_rank(), local.get(vp.node_rank()) + 1000.0);
    });
    publish(env, local, g);
    env.barrier();
    if (env.node_id() == 0) {
      auto probe = env.ppm_do(1);
      probe.global_phase([&](Vp&) {
        for (uint64_t i = 0; i < n; ++i) got.push_back(g.get(i));
      });
    } else {
      auto probe = env.ppm_do(0);
      probe.global_phase([](Vp&) {});
    }
  });
  ASSERT_EQ(got.size(), n);
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(got[i], static_cast<double>(i) * 1.25 + 1000.0);
  }
}

TEST_P(Algorithms, LocalizeRejectsUndersizedTarget) {
  run(config(), [&](Env& env) {
    auto g = env.global_array<double>(GetParam().n + 64);
    const uint64_t len = g.local_end() - g.local_begin();
    if (len > 1) {
      auto tiny = env.node_array<double>(len - 1);
      EXPECT_THROW(localize(env, g, tiny), Error);
    }
    env.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Algorithms,
    ::testing::Values(Shape{1, 1, 16}, Shape{1, 4, 33}, Shape{2, 2, 64},
                      Shape{3, 2, 100}, Shape{4, 4, 128}, Shape{5, 1, 17}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores) + "s" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace ppm
