// Per-phase runtime profiling (RuntimeOptions::profile_phases).
#include <gtest/gtest.h>

#include "core/ppm.hpp"

namespace ppm {
namespace {

TEST(PhaseProfiling, DisabledByDefault) {
  cluster::Machine machine({.nodes = 2, .cores_per_node = 2});
  Runtime runtime(machine, RuntimeOptions{});
  machine.run_per_node([&](int node) {
    NodeRuntime& nr = runtime.node(node);
    nr.start();
    Env env(nr);
    auto vps = env.ppm_do(4);
    vps.global_phase([](Vp&) {});
    EXPECT_TRUE(nr.phase_profiles().empty());
    nr.finish();
  });
}

TEST(PhaseProfiling, RecordsOneEntryPerPhaseWithOrderedTimes) {
  cluster::Machine machine({.nodes = 2, .cores_per_node = 2});
  RuntimeOptions opts;
  opts.profile_phases = true;
  Runtime runtime(machine, opts);
  machine.run_per_node([&](int node) {
    NodeRuntime& nr = runtime.node(node);
    nr.start();
    Env env(nr);
    auto a = env.global_array<double>(64);
    auto vps = env.ppm_do(8);
    vps.global_phase([&](Vp& vp) { a.set(vp.global_rank(), 1.0); });
    vps.node_phase([](Vp&) {});
    vps.global_phase([&](Vp& vp) { (void)a.get(63 - vp.global_rank()); });

    const auto& profiles = nr.phase_profiles();
    ASSERT_EQ(profiles.size(), 3u);
    EXPECT_TRUE(profiles[0].global);
    EXPECT_FALSE(profiles[1].global);
    EXPECT_TRUE(profiles[2].global);
    for (const auto& p : profiles) {
      EXPECT_EQ(p.k_local, 8u);
      EXPECT_LE(p.start_ns, p.compute_done_ns);
      EXPECT_LE(p.compute_done_ns, p.committed_ns);
      EXPECT_GE(p.compute_ns(), 0);
      EXPECT_GE(p.commit_ns(), 0);
    }
    // Phase 1 wrote 8 entries; the node phase wrote none.
    EXPECT_EQ(profiles[0].write_entries, 8u);
    EXPECT_EQ(profiles[1].write_entries, 0u);
    // Phase 3 read remote elements on at least one node.
    nr.finish();
  });
}

TEST(PhaseProfiling, CommitDominatedPhaseShowsInBreakdown) {
  cluster::Machine machine({.nodes = 2, .cores_per_node = 1});
  RuntimeOptions opts;
  opts.profile_phases = true;
  opts.eager_flush = false;  // push all traffic into the commit step
  Runtime runtime(machine, opts);
  machine.run_per_node([&](int node) {
    NodeRuntime& nr = runtime.node(node);
    nr.start();
    Env env(nr);
    auto a = env.global_array<double>(1 << 14);
    // Write the *other* node's half: all entries ship at commit.
    const uint64_t half = a.size() / 2;
    auto vps = env.ppm_do(half);
    vps.global_phase([&](Vp& vp) {
      const uint64_t target = (node == 0)
                                  ? half + vp.node_rank()
                                  : vp.node_rank();
      a.set(target, 1.0);
    });
    const auto& p = nr.phase_profiles().back();
    EXPECT_EQ(p.write_entries, half);
    EXPECT_GE(p.bundles_sent, 1u);
    EXPECT_GT(p.commit_ns(), 0);
    nr.finish();
  });
}

}  // namespace
}  // namespace ppm
