// Determinism and stress: in modeled-time mode, identical programs on
// identical machines must produce bit-identical results and timings —
// run-to-run and regardless of host scheduling.
#include <gtest/gtest.h>

#include <vector>

#include "core/algorithms.hpp"
#include "core/ppm.hpp"
#include "util/rng.hpp"

namespace ppm {
namespace {

struct Trace {
  int64_t duration_ns;
  uint64_t messages;
  uint64_t bytes;
  std::vector<int64_t> contents;
};

Trace run_traced(uint64_t seed) {
  PpmConfig cfg;
  cfg.machine.nodes = 5;
  cfg.machine.cores_per_node = 3;
  Trace t{};
  cluster::Machine machine(cfg.machine);
  RunResult r = run_on(machine, cfg.runtime, [&](Env& env) {
    auto a = env.global_array<int64_t>(256);
    auto vps = env.ppm_do(64);
    Rng node_rng(seed ^ static_cast<uint64_t>(env.node_id()));
    for (int round = 0; round < 4; ++round) {
      const int64_t salt = node_rng.next_in(1, 100);
      vps.global_phase([&](Vp& vp) {
        Rng rng(seed ^ vp.global_rank() ^ static_cast<uint64_t>(round));
        const uint64_t target = rng.next_below(256);
        a.add(target, salt + static_cast<int64_t>(vp.global_rank()));
        (void)a.get(rng.next_below(256));
      });
    }
    if (env.node_id() == 0) {
      auto probe = env.ppm_do(1);
      probe.global_phase([&](Vp&) {
        for (uint64_t i = 0; i < 256; ++i) t.contents.push_back(a.get(i));
      });
    } else {
      auto probe = env.ppm_do(0);
      probe.global_phase([](Vp&) {});
    }
  });
  t.duration_ns = r.duration_ns;
  t.messages = r.network_messages;
  t.bytes = r.network_bytes;
  return t;
}

TEST(Determinism, IdenticalRunsProduceIdenticalTracesAndTimings) {
  const Trace a = run_traced(123);
  const Trace b = run_traced(123);
  EXPECT_EQ(a.duration_ns, b.duration_ns);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.contents, b.contents);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const Trace a = run_traced(123);
  const Trace c = run_traced(456);
  EXPECT_NE(a.contents, c.contents);
}

TEST(Stress, LargeMachineManyVpsManyPhases) {
  // 16 nodes x 8 cores, 20k VPs per node, heavy conflicting traffic.
  PpmConfig cfg;
  cfg.machine.nodes = 16;
  cfg.machine.cores_per_node = 8;
  int64_t total = -1;
  run(cfg, [&](Env& env) {
    auto a = env.global_array<int64_t>(1 << 12);
    auto vps = env.ppm_do(20'000);
    for (int round = 0; round < 3; ++round) {
      vps.global_phase([&](Vp& vp) {
        a.add((vp.global_rank() * 2654435761ULL) % (1 << 12), 1);
      });
    }
    if (env.node_id() == 0) {
      auto probe = env.ppm_do(1);
      probe.global_phase([&](Vp&) {
        int64_t sum = 0;
        for (uint64_t i = 0; i < (1 << 12); ++i) sum += a.get(i);
        total = sum;
      });
    } else {
      auto probe = env.ppm_do(0);
      probe.global_phase([](Vp&) {});
    }
  });
  EXPECT_EQ(total, 3LL * 16 * 20'000);
}

TEST(Stress, DeepPhaseSequence) {
  // Hundreds of back-to-back global phases: epochs, barriers and caches
  // must stay consistent for long-running programs.
  PpmConfig cfg;
  cfg.machine.nodes = 3;
  cfg.machine.cores_per_node = 2;
  int64_t final_value = -1;
  run(cfg, [&](Env& env) {
    auto a = env.global_array<int64_t>(3);
    auto vps = env.ppm_do(1);
    for (int i = 0; i < 300; ++i) {
      vps.global_phase([&](Vp&) {
        // Rotate: each node bumps its successor's slot.
        a.add(static_cast<uint64_t>((env.node_id() + 1) % 3),
              a.get(static_cast<uint64_t>(env.node_id())) % 7 + 1);
      });
    }
    vps.global_phase([&](Vp&) {
      if (env.node_id() == 0) final_value = a.get(0) + a.get(1) + a.get(2);
    });
  });
  EXPECT_GT(final_value, 0);
}

}  // namespace
}  // namespace ppm
