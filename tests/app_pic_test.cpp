// Particle-in-cell: deposition conservation, field consistency, and the
// PPM loop's agreement with the serial reference.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/pic/pic.hpp"

namespace ppm::apps::pic {
namespace {

TEST(PicSerial, GeneratorIsDeterministicAndInterior) {
  const Particles a = make_two_streams(500, 9);
  const Particles b = make_two_streams(500, 9);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.charge, b.charge);
  for (uint64_t k = 0; k < a.size(); ++k) {
    EXPECT_GT(a.x[k], 0.0);
    EXPECT_LT(a.x[k], 1.0);
    EXPECT_GT(a.y[k], 0.0);
    EXPECT_LT(a.y[k], 1.0);
  }
}

TEST(PicSerial, DepositionConservesCharge) {
  const Particles p = make_two_streams(1000, 3);
  const auto rho = deposit_serial(p, 32);
  double net = 0;
  for (double q : p.charge) net += q;
  EXPECT_NEAR(total_charge(rho), net, 1e-12);  // bilinear weights sum to 1
}

TEST(PicSerial, DepositionPutsChargeNearParticles) {
  Particles p;
  p.resize(1);
  p.x[0] = 0.5;
  p.y[0] = 0.5;
  p.charge[0] = 2.0;
  const auto rho = deposit_serial(p, 8);
  // Particle exactly on vertex (4,4) of an 8-cell grid.
  EXPECT_NEAR(rho.at(4, 4), 2.0, 1e-12);
}

TEST(PicSerial, OppositeChargesAttract) {
  // Two particles of opposite sign drift toward each other.
  // Both particles sit exactly on grid vertices (12/32 and 20/32), where
  // the cloud-in-cell self-force vanishes by symmetry.
  Particles p;
  p.resize(2);
  p.x = {0.375, 0.625};
  p.y = {0.5, 0.5};
  p.vx = {0, 0};
  p.vy = {0, 0};
  p.charge = {1.0, -1.0};
  const double gap_before = p.x[1] - p.x[0];
  simulate_serial(p, {.grid = 32, .dt = 0.1, .steps = 6, .mg_cycles = 6});
  const double gap_after = p.x[1] - p.x[0];
  EXPECT_LT(gap_after, gap_before);
}

TEST(PicSerial, ParticlesStayInTheBox) {
  Particles p = make_two_streams(300, 5);
  // Crank the velocities so reflections actually trigger.
  for (auto& v : p.vx) v *= 40;
  for (auto& v : p.vy) v *= 40;
  simulate_serial(p, {.grid = 16, .dt = 0.1, .steps = 10, .mg_cycles = 2});
  for (uint64_t k = 0; k < p.size(); ++k) {
    EXPECT_GE(p.x[k], 0.0);
    EXPECT_LE(p.x[k], 1.0);
    EXPECT_GE(p.y[k], 0.0);
    EXPECT_LE(p.y[k], 1.0);
  }
}

struct Shape {
  int nodes;
  int cores;
};

class DistributedPic : public ::testing::TestWithParam<Shape> {};

TEST_P(DistributedPic, PpmMatchesSerialTrajectories) {
  const PicOptions opts{.grid = 16, .dt = 0.05, .steps = 3, .mg_cycles = 3};
  Particles serial = make_two_streams(400, 77);
  simulate_serial(serial, opts);

  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  Particles ppm_state;
  run(cfg, [&](Env& env) {
    Particles mine = make_two_streams(400, 77);
    simulate_ppm(env, mine, opts);
    if (env.node_id() == 0) ppm_state = std::move(mine);
  });

  ASSERT_EQ(ppm_state.size(), serial.size());
  // Deposition order differs between serial and PPM (commutative adds in
  // different sequences), so trajectories agree to FP-accumulation noise.
  for (uint64_t k = 0; k < serial.size(); ++k) {
    EXPECT_NEAR(ppm_state.x[k], serial.x[k], 1e-9) << "particle " << k;
    EXPECT_NEAR(ppm_state.y[k], serial.y[k], 1e-9) << "particle " << k;
    EXPECT_NEAR(ppm_state.vx[k], serial.vx[k], 1e-9) << "particle " << k;
  }
}

TEST_P(DistributedPic, PpmConservesChargeEveryStep) {
  const PicOptions opts{.grid = 16, .dt = 0.05, .steps = 2, .mg_cycles = 2};
  PpmConfig cfg;
  cfg.machine.nodes = GetParam().nodes;
  cfg.machine.cores_per_node = GetParam().cores;
  run(cfg, [&](Env& env) {
    Particles mine = make_two_streams(256, 13);
    simulate_ppm(env, mine, opts);  // internal PPM_CHECKs guard the slices
    // Conservation check via a fresh serial deposit of the final state.
    const auto rho = deposit_serial(mine, opts.grid);
    EXPECT_NEAR(total_charge(rho), 0.0, 1e-9);  // equal +/- populations
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributedPic,
    ::testing::Values(Shape{1, 1}, Shape{2, 2}, Shape{3, 1}, Shape{4, 2}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "n" + std::to_string(info.param.nodes) + "c" +
             std::to_string(info.param.cores);
    });

}  // namespace
}  // namespace ppm::apps::pic
